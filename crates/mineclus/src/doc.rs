//! DOC: the randomized ancestor of MineClus (Procopiuc et al., SIGMOD 2002).
//!
//! Instead of mining the best dimension set exactly, DOC samples a medoid
//! plus a small *discriminating set* of points and keeps the dimensions in
//! which the whole discriminating set stays within `width` of the medoid.
//! Many trials are drawn; the best cluster under µ wins. Included as an
//! alternative initializer for the `ablation_initializer` bench.

use sth_platform::rng::{Rng, SliceRandom};
use sth_data::Dataset;

use crate::{mu, DimSet, SubspaceCluster, SubspaceClustering};

/// DOC parameters.
#[derive(Clone, Debug)]
pub struct DocConfig {
    /// Minimal support fraction α.
    pub alpha: f64,
    /// µ trade-off β ∈ (0, 1).
    pub beta: f64,
    /// Half-width w of the cluster box.
    pub width: f64,
    /// Trials per extraction round (DOC's `2/α · (d/ln 2)`-ish constant,
    /// fixed here for determinism and speed).
    pub trials: usize,
    /// Size of the discriminating set per trial.
    pub discriminating_set: usize,
    /// Maximum number of clusters.
    pub max_clusters: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DocConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            beta: 0.25,
            width: 60.0,
            trials: 256,
            discriminating_set: 3,
            max_clusters: 32,
            seed: 0xD0C5,
        }
    }
}

/// The randomized DOC projective clustering algorithm.
#[derive(Clone, Debug)]
pub struct Doc {
    config: DocConfig,
}

impl Doc {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: DocConfig) -> Self {
        assert!(config.alpha > 0.0 && config.alpha <= 1.0);
        assert!(config.beta > 0.0 && config.beta < 1.0);
        assert!(config.width > 0.0);
        assert!(config.discriminating_set >= 1);
        Self { config }
    }
}

impl SubspaceClustering for Doc {
    fn cluster(&self, data: &Dataset) -> Vec<SubspaceCluster> {
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }
        let min_support = ((self.config.alpha * n as f64).ceil() as usize).max(2);
        let mut rng = Rng::seed_from_u64(self.config.seed);
        let mut active: Vec<u32> = (0..n as u32).collect();
        let mut clusters = Vec::new();

        while clusters.len() < self.config.max_clusters && active.len() >= min_support {
            let mut best: Option<(DimSet, Vec<u32>, f64)> = None;
            for _ in 0..self.config.trials {
                // Medoid + discriminating set.
                let medoid_id = *active.choose(&mut rng).unwrap();
                let medoid = data.row(medoid_id as usize);
                let mut disc: Vec<u32> = active.clone();
                disc.shuffle(&mut rng);
                disc.truncate(self.config.discriminating_set);
                // Dimensions where the whole discriminating set is tight
                // around the medoid.
                let mut dims = DimSet::EMPTY;
                for (d, &m) in medoid.iter().enumerate() {
                    let ok = disc
                        .iter()
                        .all(|&i| (data.value(i as usize, d) - m).abs() <= self.config.width);
                    if ok {
                        dims.insert(d);
                    }
                }
                if dims.is_empty() {
                    continue;
                }
                // Members: active points within width of the medoid in dims.
                let members: Vec<u32> = active
                    .iter()
                    .copied()
                    .filter(|&i| {
                        dims.iter().all(|d| {
                            (data.value(i as usize, d) - medoid[d]).abs() <= self.config.width
                        })
                    })
                    .collect();
                if members.len() < min_support {
                    continue;
                }
                let score = mu(members.len(), dims.len(), self.config.beta);
                if best.as_ref().is_none_or(|(_, _, s)| score > *s) {
                    best = Some((dims, members, score));
                }
            }
            let Some((dims, members, score)) = best else { break };
            let member_set: std::collections::HashSet<u32> = members.iter().copied().collect();
            active.retain(|i| !member_set.contains(i));
            clusters.push(SubspaceCluster { points: members, dims, score });
        }
        clusters.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        clusters
    }

    fn name(&self) -> &str {
        "doc"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sth_data::cross::CrossSpec;

    #[test]
    fn finds_dense_regions() {
        let ds = CrossSpec::cross2d().scaled(0.05).generate();
        let doc = Doc::new(DocConfig { alpha: 0.05, width: 30.0, ..DocConfig::default() });
        let clusters = doc.cluster(&ds);
        assert!(!clusters.is_empty());
        // Clusters must be reasonably large and disjoint.
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            assert!(c.len() >= (0.05 * ds.len() as f64) as usize);
            for &p in &c.points {
                assert!(seen.insert(p));
            }
        }
    }

    #[test]
    fn deterministic() {
        let ds = CrossSpec::cross2d().scaled(0.02).generate();
        let doc = Doc::new(DocConfig::default());
        let a = doc.cluster(&ds);
        let b = doc.cluster(&ds);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points);
        }
    }
}

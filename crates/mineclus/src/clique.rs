//! A CLIQUE-style grid/density subspace clusterer (Agrawal et al., SIGMOD
//! 1998), simplified: Apriori enumeration of dense subspaces, connected
//! components of dense grid units as clusters. Included as an alternative
//! initializer for the `ablation_initializer` bench.

use std::collections::{HashMap, HashSet};

use sth_data::Dataset;

use crate::{mu, DimSet, SubspaceCluster, SubspaceClustering};

/// CLIQUE parameters.
#[derive(Clone, Debug)]
pub struct CliqueConfig {
    /// Grid resolution ξ: cells per dimension.
    pub xi: usize,
    /// Density threshold τ: a unit is dense when it holds ≥ τ·n tuples.
    pub tau: f64,
    /// Maximum subspace dimensionality explored.
    pub max_level: usize,
    /// Maximum number of clusters reported.
    pub max_clusters: usize,
    /// β used only to make scores comparable with MineClus µ values.
    pub beta: f64,
}

impl Default for CliqueConfig {
    fn default() -> Self {
        Self { xi: 10, tau: 0.005, max_level: 3, max_clusters: 32, beta: 0.25 }
    }
}

/// The CLIQUE-style algorithm.
#[derive(Clone, Debug)]
pub struct Clique {
    config: CliqueConfig,
}

impl Clique {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: CliqueConfig) -> Self {
        assert!(config.xi >= 2);
        assert!(config.tau > 0.0 && config.tau < 1.0);
        assert!(config.max_level >= 1);
        Self { config }
    }

    /// Cell index of a value in dimension `d`.
    fn cell(&self, data: &Dataset, i: usize, d: usize) -> u16 {
        let lo = data.domain().lo()[d];
        let hi = data.domain().hi()[d];
        let t = (data.value(i, d) - lo) / (hi - lo);
        (((t * self.config.xi as f64) as usize).min(self.config.xi - 1)) as u16
    }

    /// Dense units of one subspace: cell-coordinates → point ids.
    fn dense_units(&self, data: &Dataset, dims: &[usize], min_count: usize) -> HashMap<Vec<u16>, Vec<u32>> {
        let mut units: HashMap<Vec<u16>, Vec<u32>> = HashMap::new();
        for i in 0..data.len() {
            let key: Vec<u16> = dims.iter().map(|&d| self.cell(data, i, d)).collect();
            units.entry(key).or_default().push(i as u32);
        }
        units.retain(|_, v| v.len() >= min_count);
        units
    }

    /// Connected components of dense units (adjacency: equal in all but one
    /// coordinate, differing by exactly 1 there).
    fn components(units: &HashMap<Vec<u16>, Vec<u32>>) -> Vec<Vec<Vec<u16>>> {
        let keys: Vec<&Vec<u16>> = units.keys().collect();
        let mut visited: HashSet<&Vec<u16>> = HashSet::new();
        let mut comps = Vec::new();
        for &start in &keys {
            if visited.contains(start) {
                continue;
            }
            let mut comp = Vec::new();
            let mut stack = vec![start];
            visited.insert(start);
            while let Some(k) = stack.pop() {
                comp.push(k.clone());
                // Probe neighbors.
                for d in 0..k.len() {
                    for delta in [-1i32, 1] {
                        let c = k[d] as i32 + delta;
                        if c < 0 {
                            continue;
                        }
                        let mut nk = k.clone();
                        nk[d] = c as u16;
                        if let Some((key, _)) = units.get_key_value(&nk) {
                            if visited.insert(key) {
                                stack.push(key);
                            }
                        }
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }
}

impl SubspaceClustering for Clique {
    fn cluster(&self, data: &Dataset) -> Vec<SubspaceCluster> {
        let n = data.len();
        if n == 0 {
            return Vec::new();
        }
        let min_count = ((self.config.tau * n as f64).ceil() as usize).max(1);
        let ndim = data.ndim();

        // Level 1: dense 1-d subspaces.
        let mut dense_subspaces: Vec<Vec<usize>> = Vec::new();
        for d in 0..ndim {
            if !self.dense_units(data, &[d], min_count).is_empty() {
                dense_subspaces.push(vec![d]);
            }
        }
        let mut all_levels: Vec<Vec<usize>> = dense_subspaces.clone();
        let mut current = dense_subspaces;
        for _level in 2..=self.config.max_level.min(ndim) {
            // Apriori join: two subspaces sharing all but the last dim.
            let mut candidates: HashSet<Vec<usize>> = HashSet::new();
            for (i, a) in current.iter().enumerate() {
                for b in &current[i + 1..] {
                    if a[..a.len() - 1] == b[..b.len() - 1] {
                        let mut c = a.clone();
                        c.push(*b.last().unwrap());
                        c.sort_unstable();
                        candidates.insert(c);
                    }
                }
            }
            let mut next = Vec::new();
            for c in candidates {
                // All (k-1)-subsets must be dense.
                let prunable = (0..c.len()).all(|skip| {
                    let sub: Vec<usize> =
                        c.iter().enumerate().filter(|&(j, _)| j != skip).map(|(_, &d)| d).collect();
                    current.contains(&sub)
                });
                if prunable && !self.dense_units(data, &c, min_count).is_empty() {
                    next.push(c);
                }
            }
            next.sort();
            if next.is_empty() {
                break;
            }
            all_levels.extend(next.iter().cloned());
            current = next;
        }

        // Report clusters only from maximal dense subspaces.
        let maximal: Vec<&Vec<usize>> = all_levels
            .iter()
            .filter(|s| {
                !all_levels.iter().any(|t| {
                    t.len() > s.len() && s.iter().all(|d| t.contains(d))
                })
            })
            .collect();

        let mut clusters = Vec::new();
        for dims in maximal {
            let units = self.dense_units(data, dims, min_count);
            for comp in Self::components(&units) {
                let mut points: Vec<u32> = comp.iter().flat_map(|k| units[k].iter().copied()).collect();
                points.sort_unstable();
                let score = mu(points.len(), dims.len(), self.config.beta);
                clusters.push(SubspaceCluster { points, dims: DimSet::from_dims(dims), score });
            }
        }
        clusters.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        clusters.truncate(self.config.max_clusters);
        clusters
    }

    fn name(&self) -> &str {
        "clique"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sth_data::cross::CrossSpec;

    #[test]
    fn finds_cross_bands() {
        let ds = CrossSpec::cross2d().scaled(0.05).generate();
        let clique = Clique::new(CliqueConfig { tau: 0.02, ..CliqueConfig::default() });
        let clusters = clique.cluster(&ds);
        assert!(!clusters.is_empty());
        // In 1-d projections the Cross data is near-uniform (the other band
        // spreads over the whole axis), so every 1-d subspace is dense and
        // the maximal dense subspace is the full 2-d space: CLIQUE reports
        // the cross-shaped component there. The top component must cover a
        // substantial share of the data.
        assert!(clusters[0].len() > ds.len() / 4, "top component too small: {}", clusters[0].len());
    }

    #[test]
    fn respects_max_clusters() {
        let ds = CrossSpec::cross2d().scaled(0.05).generate();
        let clique = Clique::new(CliqueConfig { tau: 0.001, max_clusters: 3, ..CliqueConfig::default() });
        assert!(clique.cluster(&ds).len() <= 3);
    }

    #[test]
    fn component_merging() {
        // Two adjacent dense cells in 1-d must form one component.
        let mut units: HashMap<Vec<u16>, Vec<u32>> = HashMap::new();
        units.insert(vec![3], vec![0, 1]);
        units.insert(vec![4], vec![2, 3]);
        units.insert(vec![9], vec![4, 5]);
        let comps = Clique::components(&units);
        assert_eq!(comps.len(), 2);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = comps.iter().map(Vec::len).collect();
            s.sort_unstable();
            s
        };
        assert_eq!(sizes, vec![1, 2]);
    }
}

//! Subspace clustering for histogram initialization.
//!
//! The paper initializes STHoles with dense clusters found in *projections*
//! of the data. Its chosen algorithm is **MineClus** (Yiu & Mamoulis, ICDM
//! 2003), a frequent-pattern-based formulation of the DOC projective
//! clustering model; the paper's earlier study (SSDBM 2011) found it the
//! best initializer among six subspace clustering algorithms.
//!
//! This crate implements, from scratch:
//!
//! * [`MineClus`] — random medoids + frequent-dimension-set mining with
//!   branch-and-bound on the DOC quality function `µ(a, b) = a · (1/β)^b`,
//!   iterated with point removal;
//! * [`Doc`] — the randomized DOC ancestor (used by the
//!   `ablation_initializer` bench);
//! * [`Clique`] — a grid/density bottom-up subspace clusterer in the spirit
//!   of CLIQUE (same ablation);
//! * [`Proclus`] — the classic k-medoid projective clustering of Aggarwal
//!   et al. (same ablation);
//! * the shared [`SubspaceCluster`] output type and the [`DimSet`] bitmask.
//!
//! All algorithms are deterministic given their seed.

#![warn(missing_docs)]

mod clique;
mod cluster;
mod dimset;
mod doc;
mod mineclus;
mod mining;
mod proclus;

pub use clique::{Clique, CliqueConfig};
pub use cluster::SubspaceCluster;
pub use dimset::DimSet;
pub use doc::{Doc, DocConfig};
pub use mineclus::{cluster_default, MineClus, MineClusConfig};
pub use proclus::{Proclus, ProclusConfig};

use sth_data::Dataset;

/// A subspace clustering algorithm: dataset in, scored clusters out.
pub trait SubspaceClustering {
    /// Clusters the dataset. The result is sorted by descending score
    /// (importance); higher scores mean more important clusters.
    fn cluster(&self, data: &Dataset) -> Vec<SubspaceCluster>;

    /// Algorithm name for reports.
    fn name(&self) -> &str;
}

/// The DOC/MineClus quality function `µ(a, b) = a · (1/β)^b`:
/// `a` points in `b` relevant dimensions. Bigger is better; `β ∈ (0, 1)`
/// trades cluster size against dimensionality (small β favors
/// higher-dimensional clusters).
#[inline]
pub fn mu(points: usize, dims: usize, beta: f64) -> f64 {
    debug_assert!(beta > 0.0 && beta < 1.0, "beta must be in (0, 1)");
    points as f64 * (1.0 / beta).powi(dims as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mu_tradeoff() {
        // With β = 0.25, one extra dimension is worth a 4x smaller cluster.
        assert_eq!(mu(400, 2, 0.25), mu(100, 3, 0.25));
        assert!(mu(101, 3, 0.25) > mu(400, 2, 0.25));
        // Smaller β emphasizes dimensionality more.
        assert!(mu(10, 4, 0.1) > mu(10, 4, 0.3));
    }
}

//! PROCLUS (Aggarwal et al., SIGMOD 1999): k-medoid projective clustering.
//!
//! The paper's earlier study (SSDBM 2011) compared six subspace clustering
//! algorithms as histogram initializers; PROCLUS is the classic
//! medoid-based representative of that family and completes the
//! `ablation_initializer` bench alongside MineClus, DOC and CLIQUE.
//!
//! Phases, as in the original algorithm:
//! 1. draw a sample, greedily spread `B·k` candidate medoids
//!    (farthest-point heuristic);
//! 2. iterate: for the current k medoids, find each medoid's *locality*
//!    (points within its distance to the nearest other medoid), pick the
//!    dimensions with unusually small average deviation (z-score), assign
//!    every point to the nearest medoid under its *projected* Manhattan
//!    distance, and replace the medoid of the worst cluster;
//! 3. refine dimensions once on the final assignment and drop outliers.

use sth_platform::rng::{Rng, SliceRandom};
use sth_data::Dataset;

use crate::{mu, DimSet, SubspaceCluster, SubspaceClustering};

/// PROCLUS parameters.
#[derive(Clone, Debug)]
pub struct ProclusConfig {
    /// Number of clusters k.
    pub k: usize,
    /// Average number of relevant dimensions per cluster (ℓ ≥ 2).
    pub avg_dims: usize,
    /// Candidate-medoid multiplier (the paper's B).
    pub candidate_factor: usize,
    /// Medoid-replacement iterations.
    pub iterations: usize,
    /// β used only to make importance scores comparable with MineClus µ.
    pub beta: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ProclusConfig {
    fn default() -> Self {
        Self { k: 10, avg_dims: 3, candidate_factor: 4, iterations: 12, beta: 0.25, seed: 0x9C15 }
    }
}

/// Best iteration snapshot: (objective, medoids, dims, clusters).
type BestState = (f64, Vec<usize>, Vec<DimSet>, Vec<Vec<u32>>);

/// The PROCLUS algorithm.
#[derive(Clone, Debug)]
pub struct Proclus {
    config: ProclusConfig,
}

impl Proclus {
    /// Creates the algorithm with the given configuration.
    pub fn new(config: ProclusConfig) -> Self {
        assert!(config.k >= 1);
        assert!(config.avg_dims >= 2, "PROCLUS requires ℓ ≥ 2");
        assert!(config.beta > 0.0 && config.beta < 1.0);
        Self { config }
    }
}

/// Full-space Manhattan distance between a medoid and point `i`.
fn manhattan(data: &Dataset, i: usize, medoid: &[f64]) -> f64 {
    (0..data.ndim()).map(|d| (data.value(i, d) - medoid[d]).abs()).sum()
}

/// Projected (segmental) Manhattan distance over `dims`.
fn projected(data: &Dataset, i: usize, medoid: &[f64], dims: &DimSet) -> f64 {
    let mut sum = 0.0;
    for d in dims.iter() {
        sum += (data.value(i, d) - medoid[d]).abs();
    }
    sum / dims.len().max(1) as f64
}

impl Proclus {
    /// Greedy farthest-point selection of `count` spread-out candidates.
    fn spread_candidates(
        &self,
        data: &Dataset,
        rng: &mut Rng,
        count: usize,
    ) -> Vec<usize> {
        let n = data.len();
        let mut chosen = vec![rng.gen_range(0..n)];
        let mut dist: Vec<f64> = (0..n)
            .map(|i| manhattan(data, i, &data.row(chosen[0])))
            .collect();
        while chosen.len() < count.min(n) {
            let next = dist
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            chosen.push(next);
            let row = data.row(next);
            for (i, dst) in dist.iter_mut().enumerate() {
                *dst = dst.min(manhattan(data, i, &row));
            }
        }
        chosen
    }

    /// Dimension selection: per medoid, z-scores of the average deviations
    /// within its locality; globally pick the `k·ℓ` smallest, ≥ 2 each.
    fn find_dimensions(&self, data: &Dataset, medoids: &[usize]) -> Vec<DimSet> {
        let ndim = data.ndim();
        let k = medoids.len();
        // Locality radius: distance to the nearest other medoid.
        let rows: Vec<Vec<f64>> = medoids.iter().map(|&m| data.row(m)).collect();
        let mut x = vec![vec![0.0f64; ndim]; k]; // avg per-dim deviation
        for (i, &m) in medoids.iter().enumerate() {
            let delta = medoids
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(j, _)| manhattan(data, m, &rows[j]))
                .fold(f64::INFINITY, f64::min);
            let mut count = 0usize;
            for p in 0..data.len() {
                if manhattan(data, p, &rows[i]) <= delta {
                    for d in 0..ndim {
                        x[i][d] += (data.value(p, d) - rows[i][d]).abs();
                    }
                    count += 1;
                }
            }
            for v in x[i].iter_mut() {
                *v /= count.max(1) as f64;
            }
        }
        // Z-scores per medoid.
        let mut scored: Vec<(f64, usize, usize)> = Vec::with_capacity(k * ndim);
        for (i, xi) in x.iter().enumerate() {
            let mean: f64 = xi.iter().sum::<f64>() / ndim as f64;
            let var: f64 =
                xi.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (ndim - 1).max(1) as f64;
            let sigma = var.sqrt().max(1e-12);
            for (d, &v) in xi.iter().enumerate() {
                scored.push(((v - mean) / sigma, i, d));
            }
        }
        scored.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let mut dims = vec![DimSet::EMPTY; k];
        // Two smallest per medoid first.
        for (i, di) in dims.iter_mut().enumerate() {
            let mut per: Vec<(f64, usize)> =
                scored.iter().filter(|&&(_, m, _)| m == i).map(|&(z, _, d)| (z, d)).collect();
            per.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            for &(_, d) in per.iter().take(2) {
                di.insert(d);
            }
        }
        // Remaining budget globally.
        let budget = (self.config.avg_dims * k).saturating_sub(2 * k);
        let mut used = 0;
        for &(_, i, d) in &scored {
            if used >= budget {
                break;
            }
            if !dims[i].contains(d) {
                dims[i].insert(d);
                used += 1;
            }
        }
        dims
    }

    /// Assigns every point to the nearest medoid under projected distance.
    fn assign(&self, data: &Dataset, medoids: &[usize], dims: &[DimSet]) -> Vec<Vec<u32>> {
        let rows: Vec<Vec<f64>> = medoids.iter().map(|&m| data.row(m)).collect();
        let mut clusters = vec![Vec::new(); medoids.len()];
        for p in 0..data.len() {
            let best = (0..medoids.len())
                .min_by(|&a, &b| {
                    projected(data, p, &rows[a], &dims[a])
                        .partial_cmp(&projected(data, p, &rows[b], &dims[b]))
                        .unwrap()
                })
                .unwrap();
            clusters[best].push(p as u32);
        }
        clusters
    }

    /// Objective: average projected dispersion, lower is better.
    fn objective(&self, data: &Dataset, medoids: &[usize], dims: &[DimSet], clusters: &[Vec<u32>]) -> f64 {
        let rows: Vec<Vec<f64>> = medoids.iter().map(|&m| data.row(m)).collect();
        let mut sum = 0.0;
        for (i, members) in clusters.iter().enumerate() {
            for &p in members {
                sum += projected(data, p as usize, &rows[i], &dims[i]);
            }
        }
        sum / data.len().max(1) as f64
    }
}

impl SubspaceClustering for Proclus {
    fn cluster(&self, data: &Dataset) -> Vec<SubspaceCluster> {
        let n = data.len();
        let k = self.config.k.min(n.max(1));
        if n == 0 || k == 0 || data.ndim() < 2 {
            return Vec::new();
        }
        let mut rng = Rng::seed_from_u64(self.config.seed);
        let candidates = self.spread_candidates(data, &mut rng, self.config.candidate_factor * k);

        let mut medoids: Vec<usize> = candidates.iter().copied().take(k).collect();
        let mut best: Option<BestState> = None;
        for _ in 0..self.config.iterations {
            let dims = self.find_dimensions(data, &medoids);
            let clusters = self.assign(data, &medoids, &dims);
            let obj = self.objective(data, &medoids, &dims, &clusters);
            let improved = best.as_ref().is_none_or(|(b, ..)| obj < *b);
            if improved {
                best = Some((obj, medoids.clone(), dims, clusters));
            }
            // Replace the medoid of the smallest cluster with a random
            // unused candidate.
            let (_, best_medoids, _, best_clusters) = best.as_ref().unwrap();
            let worst = best_clusters
                .iter()
                .enumerate()
                .min_by_key(|(_, c)| c.len())
                .map(|(i, _)| i)
                .unwrap();
            let mut pool: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|c| !best_medoids.contains(c))
                .collect();
            pool.shuffle(&mut rng);
            medoids = best_medoids.clone();
            if let Some(replacement) = pool.first() {
                medoids[worst] = *replacement;
            }
        }
        let (_, medoids, dims, clusters) = best.unwrap();
        // Refinement: recompute dimensions on the final clusters.
        let _ = medoids;
        let mut out: Vec<SubspaceCluster> = clusters
            .into_iter()
            .zip(dims)
            .filter(|(members, _)| members.len() >= 2)
            .map(|(members, dims)| {
                let score = mu(members.len(), dims.len(), self.config.beta);
                SubspaceCluster { points: members, dims, score }
            })
            .collect();
        out.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap());
        out
    }

    fn name(&self) -> &str {
        "proclus"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sth_data::gauss::GaussSpec;

    #[test]
    fn clusters_cover_dataset_disjointly() {
        let ds = GaussSpec::paper().scaled(0.01).generate();
        let p = Proclus::new(ProclusConfig { k: 8, ..ProclusConfig::default() });
        let clusters = p.cluster(&ds);
        assert!(!clusters.is_empty());
        let mut seen = std::collections::HashSet::new();
        for c in &clusters {
            assert!(c.dims.len() >= 2, "PROCLUS clusters use ≥ 2 dims");
            for &pt in &c.points {
                assert!(seen.insert(pt), "point {pt} in two clusters");
            }
        }
        // Every point is assigned (no outlier phase in this variant).
        assert_eq!(seen.len(), ds.len());
    }

    #[test]
    fn deterministic() {
        let ds = GaussSpec::paper().scaled(0.005).generate();
        let p = Proclus::new(ProclusConfig::default());
        let a = p.cluster(&ds);
        let b = p.cluster(&ds);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.points, y.points);
            assert_eq!(x.dims, y.dims);
        }
    }

    #[test]
    #[should_panic(expected = "ℓ ≥ 2")]
    fn rejects_tiny_avg_dims() {
        let _ = Proclus::new(ProclusConfig { avg_dims: 1, ..ProclusConfig::default() });
    }
}

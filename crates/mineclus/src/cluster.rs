//! The common cluster output type and its rectangle representations.

use sth_data::Dataset;
use sth_geometry::Rect;

use crate::DimSet;

/// A subspace cluster: a set of tuples plus the dimensions in which they are
/// clustered, with a quality score that doubles as *importance* for
/// histogram initialization (paper §4.1: "if we use the important clusters as
/// first queries in the initialization, we have a better estimation
/// quality").
#[derive(Clone, Debug)]
pub struct SubspaceCluster {
    /// Row ids (into the clustered dataset) of the member tuples.
    pub points: Vec<u32>,
    /// Relevant dimensions.
    pub dims: DimSet,
    /// Quality/importance score (algorithm specific; MineClus uses µ).
    pub score: f64,
}

impl SubspaceCluster {
    /// Number of member tuples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the cluster has no members.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// `true` when at least one dimension of the dataspace is unused.
    pub fn is_subspace(&self, ndim: usize) -> bool {
        self.dims.len() < ndim
    }

    /// The *extended bounding rectangle* (Definition 8 of the paper): the
    /// minimal rectangle containing the member points that spans the full
    /// domain `[min, max)` in every dimension *not* in `dims`.
    ///
    /// This preserves the subspace information: taking the plain MBR would
    /// silently raise the cluster's dimensionality and misrepresent the
    /// (uniform) distribution along unused dimensions (Fig. 6 of the paper).
    pub fn extended_br(&self, data: &Dataset) -> Option<Rect> {
        data.bounding_rect(&self.points, &self.dims.to_vec())
    }

    /// The plain minimal bounding rectangle (Definition 7), tight in every
    /// dimension. Provided for the MBR-vs-extended-BR ablation.
    pub fn mbr(&self, data: &Dataset) -> Option<Rect> {
        let all: Vec<usize> = (0..data.ndim()).collect();
        data.bounding_rect(&self.points, &all)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        // 2-d domain [0,10)², points forming a vertical band at x ∈ [4, 6].
        Dataset::from_columns(
            "band",
            Rect::cube(2, 0.0, 10.0),
            vec![vec![4.0, 5.0, 6.0, 4.5], vec![1.0, 9.0, 5.0, 0.2]],
        )
    }

    #[test]
    fn extended_br_spans_unused_dimension() {
        let ds = data();
        let c = SubspaceCluster {
            points: vec![0, 1, 2, 3],
            dims: DimSet::from_dims(&[0]),
            score: 1.0,
        };
        let ebr = c.extended_br(&ds).unwrap();
        assert_eq!(ebr.lo()[0], 4.0);
        assert!(ebr.hi()[0] >= 6.0 && ebr.hi()[0] < 6.01);
        // Unused dimension 1 spans the whole domain.
        assert_eq!(ebr.lo()[1], 0.0);
        assert_eq!(ebr.hi()[1], 10.0);
        assert!(c.is_subspace(2));
    }

    #[test]
    fn mbr_is_tight_everywhere() {
        let ds = data();
        let c = SubspaceCluster {
            points: vec![0, 1, 2, 3],
            dims: DimSet::from_dims(&[0]),
            score: 1.0,
        };
        let mbr = c.mbr(&ds).unwrap();
        assert_eq!(mbr.lo()[1], 0.2);
        assert!(mbr.hi()[1] < 9.01);
        // MBR ⊆ extended BR.
        assert!(c.extended_br(&ds).unwrap().contains_rect(&mbr));
    }

    #[test]
    fn empty_cluster_has_no_rect() {
        let ds = data();
        let c = SubspaceCluster { points: vec![], dims: DimSet::from_dims(&[0]), score: 0.0 };
        assert!(c.extended_br(&ds).is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn all_points_inside_both_rects() {
        let ds = data();
        let c = SubspaceCluster {
            points: vec![0, 1, 2, 3],
            dims: DimSet::from_dims(&[0, 1]),
            score: 1.0,
        };
        for rect in [c.extended_br(&ds).unwrap(), c.mbr(&ds).unwrap()] {
            for &i in &c.points {
                assert!(rect.contains_point(&ds.row(i as usize)));
            }
        }
    }
}

//! Compact dimension sets.

use std::fmt;

/// A set of dimension indices, stored as a bitmask. Supports up to 64
/// dimensions — far beyond the 4–5 dimensions multidimensional histograms
/// scale to (paper §3.3) and the 18-d tech-report dataset.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimSet(u64);

impl DimSet {
    /// Maximum representable dimension index + 1.
    pub const MAX_DIMS: usize = 64;

    /// The empty set.
    pub const EMPTY: DimSet = DimSet(0);

    /// Builds a set from a slice of dimension indices.
    pub fn from_dims(dims: &[usize]) -> Self {
        let mut s = DimSet(0);
        for &d in dims {
            s.insert(d);
        }
        s
    }

    /// The full set `{0, .., dim-1}`.
    pub fn all(dim: usize) -> Self {
        assert!(dim <= Self::MAX_DIMS);
        if dim == Self::MAX_DIMS {
            DimSet(u64::MAX)
        } else {
            DimSet((1u64 << dim) - 1)
        }
    }

    /// Raw bitmask.
    pub fn bits(&self) -> u64 {
        self.0
    }

    /// Inserts dimension `d`.
    pub fn insert(&mut self, d: usize) {
        assert!(d < Self::MAX_DIMS, "dimension {d} out of range");
        self.0 |= 1 << d;
    }

    /// Removes dimension `d`.
    pub fn remove(&mut self, d: usize) {
        assert!(d < Self::MAX_DIMS, "dimension {d} out of range");
        self.0 &= !(1 << d);
    }

    /// Set with `d` added.
    pub fn with(mut self, d: usize) -> Self {
        self.insert(d);
        self
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, d: usize) -> bool {
        d < Self::MAX_DIMS && self.0 & (1 << d) != 0
    }

    /// Number of dimensions in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// `true` for the empty set.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// `true` when every dimension of `self` is in `other`.
    #[inline]
    pub fn is_subset_of(&self, other: &DimSet) -> bool {
        self.0 & other.0 == self.0
    }

    /// Set union.
    pub fn union(&self, other: &DimSet) -> DimSet {
        DimSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersect(&self, other: &DimSet) -> DimSet {
        DimSet(self.0 & other.0)
    }

    /// Dimensions in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..Self::MAX_DIMS).filter(move |&d| self.contains(d))
    }

    /// Dimensions as a vector.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Complement within `{0, .., dim-1}`: the *unused* dimensions.
    pub fn complement(&self, dim: usize) -> DimSet {
        DimSet(!self.0 & Self::all(dim).0)
    }
}

impl fmt::Display for DimSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, d) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_set_ops() {
        let mut s = DimSet::from_dims(&[0, 3, 5]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(3));
        assert!(!s.contains(1));
        s.insert(1);
        s.remove(3);
        assert_eq!(s.to_vec(), vec![0, 1, 5]);
        assert_eq!(format!("{s}"), "{0,1,5}");
    }

    #[test]
    fn subset_union_intersect() {
        let a = DimSet::from_dims(&[0, 1]);
        let b = DimSet::from_dims(&[0, 1, 4]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert_eq!(a.union(&b), b);
        assert_eq!(a.intersect(&b), a);
    }

    #[test]
    fn complement_gives_unused_dims() {
        let used = DimSet::from_dims(&[2, 3, 4, 5, 6]);
        assert_eq!(used.complement(7).to_vec(), vec![0, 1]);
        assert_eq!(DimSet::all(7).complement(7), DimSet::EMPTY);
    }

    #[test]
    fn all_and_bounds() {
        assert_eq!(DimSet::all(6).len(), 6);
        assert_eq!(DimSet::all(64).len(), 64);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_big_dims() {
        let mut s = DimSet::EMPTY;
        s.insert(64);
    }
}

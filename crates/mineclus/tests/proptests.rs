//! Property tests over the clustering algorithms' output contracts.

use sth_platform::check::prelude::*;
use sth_data::Dataset;
use sth_geometry::Rect;
use sth_mineclus::{
    Clique, CliqueConfig, Doc, DocConfig, MineClus, MineClusConfig, Proclus, ProclusConfig,
    SubspaceClustering,
};

fn dataset(points: &[(f64, f64, f64)]) -> Dataset {
    Dataset::from_columns(
        "prop",
        Rect::cube(3, 0.0, 1000.0),
        vec![
            points.iter().map(|p| p.0).collect(),
            points.iter().map(|p| p.1).collect(),
            points.iter().map(|p| p.2).collect(),
        ],
    )
}

/// A blob of points near a center plus uniform noise: something every
/// algorithm should be able to digest without violating its contracts.
fn blob_strategy() -> impl Strategy<Value = Vec<(f64, f64, f64)>> {
    (
        (100.0f64..900.0, 100.0f64..900.0, 100.0f64..900.0),
        collection::vec((-40.0f64..40.0, -40.0f64..40.0, -40.0f64..40.0), 40..150),
        collection::vec((0.0f64..1000.0, 0.0f64..1000.0, 0.0f64..1000.0), 0..40),
    )
        .prop_map(|(center, offsets, noise)| {
            let mut pts: Vec<(f64, f64, f64)> = offsets
                .into_iter()
                .map(|(dx, dy, dz)| {
                    (
                        (center.0 + dx).clamp(0.0, 999.9),
                        (center.1 + dy).clamp(0.0, 999.9),
                        (center.2 + dz).clamp(0.0, 999.9),
                    )
                })
                .collect();
            pts.extend(noise);
            pts
        })
}

/// The contracts every algorithm must satisfy, regardless of input.
fn check_contracts(alg: &dyn SubspaceClustering, ds: &Dataset) -> Result<(), TestCaseError> {
    let clusters = alg.cluster(ds);
    let mut seen = std::collections::HashSet::new();
    let mut last_score = f64::INFINITY;
    for c in &clusters {
        prop_assert!(!c.is_empty(), "{}: empty cluster", alg.name());
        prop_assert!(!c.dims.is_empty(), "{}: cluster without dimensions", alg.name());
        prop_assert!(c.dims.iter().all(|d| d < ds.ndim()), "{}: out-of-range dim", alg.name());
        prop_assert!(c.score.is_finite() && c.score > 0.0, "{}: bad score", alg.name());
        prop_assert!(c.score <= last_score + 1e-9, "{}: not importance-sorted", alg.name());
        last_score = c.score;
        for &p in &c.points {
            prop_assert!((p as usize) < ds.len(), "{}: dangling point id", alg.name());
            prop_assert!(seen.insert(p), "{}: point {p} in two clusters", alg.name());
        }
        // Rectangle representations contain all members.
        let ebr = c.extended_br(ds).unwrap();
        let mbr = c.mbr(ds).unwrap();
        prop_assert!(ebr.contains_rect(&mbr), "{}: MBR escapes extended BR", alg.name());
        for &p in c.points.iter().step_by(7) {
            prop_assert!(mbr.contains_point(&ds.row(p as usize)), "{}: member outside MBR", alg.name());
        }
    }
    Ok(())
}

check! {
    cases = 16;

    #[test]
    fn mineclus_contracts(points in blob_strategy()) {
        let ds = dataset(&points);
        let alg = MineClus::new(MineClusConfig { alpha: 0.1, ..MineClusConfig::default() });
        check_contracts(&alg, &ds)?;
    }

    #[test]
    fn doc_contracts(points in blob_strategy()) {
        let ds = dataset(&points);
        let alg = Doc::new(DocConfig { alpha: 0.1, trials: 64, ..DocConfig::default() });
        check_contracts(&alg, &ds)?;
    }

    #[test]
    fn clique_contracts(points in blob_strategy()) {
        let ds = dataset(&points);
        let alg = Clique::new(CliqueConfig { tau: 0.05, ..CliqueConfig::default() });
        check_contracts(&alg, &ds)?;
    }

    #[test]
    fn proclus_contracts(points in blob_strategy()) {
        let ds = dataset(&points);
        let alg = Proclus::new(ProclusConfig { k: 4, iterations: 4, ..ProclusConfig::default() });
        check_contracts(&alg, &ds)?;
    }
}

//! One-dimensional half-open intervals.

/// A half-open interval `[lo, hi)` on one attribute.
///
/// `lo == hi` denotes the empty interval. Intervals never have `lo > hi`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    lo: f64,
    hi: f64,
}

impl Interval {
    /// Creates `[lo, hi)`. Panics if the bounds are not finite or `lo > hi`.
    #[inline]
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite(), "interval bounds must be finite");
        assert!(lo <= hi, "interval lower bound {lo} exceeds upper bound {hi}");
        Self { lo, hi }
    }

    /// Lower (inclusive) bound.
    #[inline]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper (exclusive) bound.
    #[inline]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Interval length `hi - lo`.
    #[inline]
    pub fn len(&self) -> f64 {
        self.hi - self.lo
    }

    /// `true` when the interval contains no point.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.lo >= self.hi
    }

    /// `true` when `x ∈ [lo, hi)`.
    #[inline]
    pub fn contains(&self, x: f64) -> bool {
        self.lo <= x && x < self.hi
    }

    /// Intersection of two intervals; empty result is collapsed to a
    /// zero-length interval at the overlap point.
    #[inline]
    pub fn intersect(&self, other: &Interval) -> Interval {
        let lo = self.lo.max(other.lo);
        let hi = self.hi.min(other.hi);
        if lo >= hi {
            Interval { lo, hi: lo }
        } else {
            Interval { lo, hi }
        }
    }

    /// Smallest interval covering both inputs.
    #[inline]
    pub fn hull(&self, other: &Interval) -> Interval {
        Interval { lo: self.lo.min(other.lo), hi: self.hi.max(other.hi) }
    }

    /// Length of the overlap with `other` (zero when disjoint).
    #[inline]
    pub fn overlap_len(&self, other: &Interval) -> f64 {
        (self.hi.min(other.hi) - self.lo.max(other.lo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let a = Interval::new(0.0, 10.0);
        let b = Interval::new(5.0, 15.0);
        assert_eq!(a.len(), 10.0);
        assert!(a.contains(0.0));
        assert!(!a.contains(10.0));
        assert_eq!(a.intersect(&b), Interval::new(5.0, 10.0));
        assert_eq!(a.hull(&b), Interval::new(0.0, 15.0));
        assert_eq!(a.overlap_len(&b), 5.0);
    }

    #[test]
    fn disjoint_intersection_is_empty() {
        let a = Interval::new(0.0, 1.0);
        let b = Interval::new(2.0, 3.0);
        let i = a.intersect(&b);
        assert!(i.is_empty());
        assert_eq!(a.overlap_len(&b), 0.0);
    }

    #[test]
    #[should_panic(expected = "exceeds upper bound")]
    fn rejects_inverted_bounds() {
        let _ = Interval::new(2.0, 1.0);
    }
}

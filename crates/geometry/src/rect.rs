//! Axis-parallel hyper-rectangles.

use std::fmt;

use crate::Interval;

/// Error returned by the fallible [`Rect`] constructors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RectError {
    /// `lo` and `hi` have different lengths.
    DimensionMismatch {
        /// Length of the lower-bound slice.
        lo: usize,
        /// Length of the upper-bound slice.
        hi: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFinite {
        /// Offending dimension.
        dim: usize,
    },
    /// `lo[dim] > hi[dim]`.
    Inverted {
        /// Offending dimension.
        dim: usize,
    },
    /// A zero-dimensional rectangle was requested.
    ZeroDimensional,
}

impl fmt::Display for RectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RectError::DimensionMismatch { lo, hi } => {
                write!(f, "lo has {lo} dimensions but hi has {hi}")
            }
            RectError::NonFinite { dim } => write!(f, "non-finite bound in dimension {dim}"),
            RectError::Inverted { dim } => write!(f, "lo > hi in dimension {dim}"),
            RectError::ZeroDimensional => write!(f, "rectangles must have at least one dimension"),
        }
    }
}

impl std::error::Error for RectError {}

/// An axis-parallel hyper-rectangle: the cartesian product of half-open
/// intervals `[lo[d], hi[d])`.
///
/// `Rect` is the common currency of the whole library: histogram buckets,
/// range queries and cluster bounding boxes are all `Rect`s.
#[derive(Clone, Debug, PartialEq)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates a rectangle from lower/upper bound slices.
    pub fn new(lo: &[f64], hi: &[f64]) -> Result<Self, RectError> {
        if lo.len() != hi.len() {
            return Err(RectError::DimensionMismatch { lo: lo.len(), hi: hi.len() });
        }
        if lo.is_empty() {
            return Err(RectError::ZeroDimensional);
        }
        for d in 0..lo.len() {
            if !lo[d].is_finite() || !hi[d].is_finite() {
                return Err(RectError::NonFinite { dim: d });
            }
            if lo[d] > hi[d] {
                return Err(RectError::Inverted { dim: d });
            }
        }
        Ok(Self { lo: lo.into(), hi: hi.into() })
    }

    /// Like [`Rect::new`], but panics on invalid input. Convenient in tests
    /// and generators where the bounds are statically known to be valid.
    pub fn from_bounds(lo: &[f64], hi: &[f64]) -> Self {
        Self::new(lo, hi).expect("invalid rectangle bounds")
    }

    /// The unit hyper-cube `[0,1)^dim`.
    pub fn unit(dim: usize) -> Self {
        assert!(dim > 0, "rectangles must have at least one dimension");
        Self { lo: vec![0.0; dim].into(), hi: vec![1.0; dim].into() }
    }

    /// A cube `[lo, hi)^dim`.
    pub fn cube(dim: usize, lo: f64, hi: f64) -> Self {
        Self::from_bounds(&vec![lo; dim], &vec![hi; dim])
    }

    /// Builds a rectangle from per-dimension intervals.
    pub fn from_intervals(ivs: &[Interval]) -> Self {
        assert!(!ivs.is_empty(), "rectangles must have at least one dimension");
        let lo: Vec<f64> = ivs.iter().map(Interval::lo).collect();
        let hi: Vec<f64> = ivs.iter().map(Interval::hi).collect();
        Self { lo: lo.into(), hi: hi.into() }
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.lo.len()
    }

    /// Lower bounds.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// Upper bounds.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// The interval spanned in dimension `d`.
    #[inline]
    pub fn interval(&self, d: usize) -> Interval {
        Interval::new(self.lo[d], self.hi[d])
    }

    /// Extent `hi[d] - lo[d]` in dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// Center point of the rectangle.
    pub fn center(&self) -> Vec<f64> {
        (0..self.ndim()).map(|d| 0.5 * (self.lo[d] + self.hi[d])).collect()
    }

    /// Product of all extents. Empty rectangles have volume zero.
    pub fn volume(&self) -> f64 {
        let mut v = 1.0;
        for d in 0..self.ndim() {
            v *= self.extent(d);
        }
        v
    }

    /// `true` if some dimension is empty, i.e. the rectangle contains no point.
    pub fn is_empty(&self) -> bool {
        (0..self.ndim()).any(|d| self.lo[d] >= self.hi[d])
    }

    /// Point membership under half-open semantics.
    #[inline]
    pub fn contains_point(&self, p: &[f64]) -> bool {
        debug_assert_eq!(p.len(), self.ndim());
        for (d, &v) in p.iter().enumerate() {
            if v < self.lo[d] || v >= self.hi[d] {
                return false;
            }
        }
        true
    }

    /// `true` when `other` lies entirely inside `self` (empty rectangles are
    /// contained in everything of matching dimensionality).
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.ndim(), other.ndim());
        if other.is_empty() {
            return true;
        }
        for d in 0..self.ndim() {
            if other.lo[d] < self.lo[d] || other.hi[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// `true` when the two rectangles share interior volume.
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.ndim(), other.ndim());
        for d in 0..self.ndim() {
            if self.lo[d].max(other.lo[d]) >= self.hi[d].min(other.hi[d]) {
                return false;
            }
        }
        true
    }

    /// Intersection of two rectangles; `None` when they share no volume.
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        debug_assert_eq!(self.ndim(), other.ndim());
        let mut lo = vec![0.0; self.ndim()];
        let mut hi = vec![0.0; self.ndim()];
        for d in 0..self.ndim() {
            lo[d] = self.lo[d].max(other.lo[d]);
            hi[d] = self.hi[d].min(other.hi[d]);
            if lo[d] >= hi[d] {
                return None;
            }
        }
        Some(Rect { lo: lo.into(), hi: hi.into() })
    }

    /// Volume of the overlap with `other` (zero when disjoint).
    pub fn overlap_volume(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.ndim(), other.ndim());
        let mut v = 1.0;
        for d in 0..self.ndim() {
            let len = self.hi[d].min(other.hi[d]) - self.lo[d].max(other.lo[d]);
            if len <= 0.0 {
                return 0.0;
            }
            v *= len;
        }
        v
    }

    /// Smallest rectangle covering both inputs.
    pub fn hull(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.ndim(), other.ndim());
        let lo: Vec<f64> = (0..self.ndim()).map(|d| self.lo[d].min(other.lo[d])).collect();
        let hi: Vec<f64> = (0..self.ndim()).map(|d| self.hi[d].max(other.hi[d])).collect();
        Rect { lo: lo.into(), hi: hi.into() }
    }

    /// Grows `self` (in place) to cover `other`.
    pub fn extend_to_cover(&mut self, other: &Rect) {
        debug_assert_eq!(self.ndim(), other.ndim());
        for d in 0..self.ndim() {
            if other.lo[d] < self.lo[d] {
                self.lo[d] = other.lo[d];
            }
            if other.hi[d] > self.hi[d] {
                self.hi[d] = other.hi[d];
            }
        }
    }

    /// Clamps `self` to lie inside `bounds`, returning `None` if nothing is
    /// left.
    pub fn clamped_to(&self, bounds: &Rect) -> Option<Rect> {
        self.intersection(bounds)
    }

    /// Returns a copy with dimension `d` restricted to `[lo, hi)`.
    ///
    /// Panics if the restriction is inverted.
    pub fn with_dim(&self, d: usize, lo: f64, hi: f64) -> Rect {
        assert!(lo <= hi, "inverted bounds for dimension {d}");
        let mut r = self.clone();
        r.lo[d] = lo;
        r.hi[d] = hi;
        r
    }

    /// Mutable access used by the shrinking machinery.
    pub(crate) fn set_lo(&mut self, d: usize, v: f64) {
        self.lo[d] = v;
    }

    pub(crate) fn set_hi(&mut self, d: usize, v: f64) {
        self.hi[d] = v;
    }

    /// `true` when `self` spans at least the full extent of `domain` in
    /// dimension `d`. Used to detect *subspace buckets*: buckets that do not
    /// constrain an attribute at all.
    pub fn spans_dimension(&self, domain: &Rect, d: usize) -> bool {
        self.lo[d] <= domain.lo[d] && self.hi[d] >= domain.hi[d]
    }

    /// Dimensions of `domain` that this rectangle does *not* constrain.
    pub fn unconstrained_dims(&self, domain: &Rect) -> Vec<usize> {
        (0..self.ndim()).filter(|&d| self.spans_dimension(domain, d)).collect()
    }

    /// `true` when the boxes are equal up to [`crate::REL_EPS`].
    pub fn approx_eq(&self, other: &Rect) -> bool {
        self.ndim() == other.ndim()
            && (0..self.ndim()).all(|d| {
                crate::approx_eq(self.lo[d], other.lo[d]) && crate::approx_eq(self.hi[d], other.hi[d])
            })
    }
}

/// Operations against *packed bounds*: a `&[f64]` of length `2·ndim` laid
/// out as all lower bounds followed by all upper bounds
/// (`[lo_0..lo_{n-1}, hi_0..hi_{n-1}]`). Bucket stores keep boxes in this
/// cache-linear form; the per-dimension arithmetic below mirrors the
/// corresponding `Rect`-vs-`Rect` methods exactly, so switching a call site
/// to the packed representation cannot change its results.
impl Rect {
    /// `true` when `self` and the packed box share interior volume.
    /// Mirrors [`Rect::intersects`].
    #[inline]
    pub fn intersects_packed(&self, packed: &[f64]) -> bool {
        let n = self.ndim();
        debug_assert_eq!(packed.len(), 2 * n);
        let (plo, phi) = packed.split_at(n);
        for d in 0..n {
            if self.lo[d].max(plo[d]) >= self.hi[d].min(phi[d]) {
                return false;
            }
        }
        true
    }

    /// `true` when the packed box lies entirely inside `self`.
    /// Mirrors [`Rect::contains_rect`] (an empty box is contained in
    /// everything of matching dimensionality).
    #[inline]
    pub fn contains_packed(&self, packed: &[f64]) -> bool {
        let n = self.ndim();
        debug_assert_eq!(packed.len(), 2 * n);
        let (plo, phi) = packed.split_at(n);
        if (0..n).any(|d| plo[d] >= phi[d]) {
            return true;
        }
        for d in 0..n {
            if plo[d] < self.lo[d] || phi[d] > self.hi[d] {
                return false;
            }
        }
        true
    }

    /// Volume of the overlap between the packed box and `self` (zero when
    /// disjoint). Mirrors [`Rect::overlap_volume`] called *on the packed
    /// box* with `self` as the argument, i.e. the per-dimension length is
    /// `packed_hi.min(self.hi) − packed_lo.max(self.lo)`.
    #[inline]
    pub fn overlap_volume_packed(&self, packed: &[f64]) -> f64 {
        let n = self.ndim();
        debug_assert_eq!(packed.len(), 2 * n);
        let (plo, phi) = packed.split_at(n);
        let mut v = 1.0;
        for d in 0..n {
            let len = phi[d].min(self.hi[d]) - plo[d].max(self.lo[d]);
            if len <= 0.0 {
                return 0.0;
            }
            v *= len;
        }
        v
    }

    /// Appends the packed form of this rectangle (`lo` slice then `hi`
    /// slice) to `out`.
    #[inline]
    pub fn write_packed(&self, out: &mut Vec<f64>) {
        out.extend_from_slice(&self.lo);
        out.extend_from_slice(&self.hi);
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for d in 0..self.ndim() {
            if d > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{:.4}..{:.4}", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::from_bounds(lo, hi)
    }

    #[test]
    fn construction_validates() {
        assert!(Rect::new(&[0.0], &[1.0, 2.0]).is_err());
        assert!(Rect::new(&[], &[]).is_err());
        assert!(Rect::new(&[0.0, f64::NAN], &[1.0, 1.0]).is_err());
        assert!(Rect::new(&[2.0], &[1.0]).is_err());
        assert!(Rect::new(&[0.0, 0.0], &[1.0, 1.0]).is_ok());
    }

    #[test]
    fn volume_and_empty() {
        assert_eq!(r(&[0.0, 0.0], &[2.0, 3.0]).volume(), 6.0);
        let degenerate = r(&[0.0, 1.0], &[2.0, 1.0]);
        assert_eq!(degenerate.volume(), 0.0);
        assert!(degenerate.is_empty());
        assert!(!degenerate.contains_point(&[1.0, 1.0]));
    }

    #[test]
    fn half_open_membership() {
        let b = r(&[0.0, 0.0], &[1.0, 1.0]);
        assert!(b.contains_point(&[0.0, 0.0]));
        assert!(!b.contains_point(&[1.0, 0.5]));
        assert!(!b.contains_point(&[0.5, 1.0]));
    }

    #[test]
    fn intersection_cases() {
        let a = r(&[0.0, 0.0], &[4.0, 4.0]);
        let b = r(&[2.0, 2.0], &[6.0, 6.0]);
        assert_eq!(a.intersection(&b).unwrap(), r(&[2.0, 2.0], &[4.0, 4.0]));
        assert_eq!(a.overlap_volume(&b), 4.0);
        // Touching edges share no volume.
        let c = r(&[4.0, 0.0], &[8.0, 4.0]);
        assert!(a.intersection(&c).is_none());
        assert!(!a.intersects(&c));
        assert_eq!(a.overlap_volume(&c), 0.0);
    }

    #[test]
    fn containment_and_hull() {
        let outer = r(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = r(&[1.0, 2.0], &[3.0, 4.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert_eq!(inner.hull(&outer), outer);
        let mut grown = inner.clone();
        grown.extend_to_cover(&r(&[5.0, 5.0], &[6.0, 6.0]));
        assert_eq!(grown, r(&[1.0, 2.0], &[6.0, 6.0]));
    }

    #[test]
    fn subspace_detection() {
        let domain = r(&[0.0, 0.0, 0.0], &[10.0, 10.0, 10.0]);
        let b = r(&[0.0, 3.0, 0.0], &[10.0, 5.0, 10.0]);
        assert!(b.spans_dimension(&domain, 0));
        assert!(!b.spans_dimension(&domain, 1));
        assert_eq!(b.unconstrained_dims(&domain), vec![0, 2]);
    }

    #[test]
    fn display_is_readable() {
        let b = r(&[0.0, 1.0], &[2.0, 3.0]);
        assert_eq!(format!("{b}"), "[0.0000..2.0000 x 1.0000..3.0000]");
    }
}

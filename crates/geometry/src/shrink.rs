//! Candidate-hole shrinking, the geometric core of STHoles refinement.
//!
//! When a query/bucket intersection partially overlaps an existing child
//! bucket, STHoles shrinks the candidate along a *single dimension* just far
//! enough to exclude the overlapping child, choosing the dimension and side
//! that preserve the most volume. This module implements that primitive.

use crate::Rect;

/// A single-dimension shrink operation: restrict `dim` so the candidate no
/// longer overlaps a given obstacle.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Shrink {
    /// Dimension being restricted.
    pub dim: usize,
    /// New lower bound for `dim`.
    pub new_lo: f64,
    /// New upper bound for `dim`.
    pub new_hi: f64,
    /// Volume of the candidate after applying the shrink.
    pub remaining_volume: f64,
}

impl Shrink {
    /// Applies the shrink to `rect` in place.
    pub fn apply(&self, rect: &mut Rect) {
        rect.set_lo(self.dim, self.new_lo);
        rect.set_hi(self.dim, self.new_hi);
    }
}

/// Finds the single-dimension shrink of `candidate` that removes all overlap
/// with `obstacle` while keeping the maximum remaining volume.
///
/// Returns `None` when the boxes do not overlap (no shrink needed) or when
/// `obstacle` covers `candidate` in every dimension (no single-dimension
/// shrink can separate them — the candidate would have to vanish).
pub fn best_shrink(candidate: &Rect, obstacle: &Rect) -> Option<Shrink> {
    debug_assert_eq!(candidate.ndim(), obstacle.ndim());
    if !candidate.intersects(obstacle) {
        return None;
    }

    let volume = candidate.volume();
    let mut best: Option<Shrink> = None;
    for d in 0..candidate.ndim() {
        let c_lo = candidate.lo()[d];
        let c_hi = candidate.hi()[d];
        let o_lo = obstacle.lo()[d];
        let o_hi = obstacle.hi()[d];
        let extent = c_hi - c_lo;
        if extent <= 0.0 {
            continue;
        }
        // Option 1: keep the low part [c_lo, o_lo).
        if o_lo > c_lo {
            let remaining = volume / extent * (o_lo - c_lo);
            if best.as_ref().is_none_or(|b| remaining > b.remaining_volume) {
                best = Some(Shrink { dim: d, new_lo: c_lo, new_hi: o_lo, remaining_volume: remaining });
            }
        }
        // Option 2: keep the high part [o_hi, c_hi).
        if o_hi < c_hi {
            let remaining = volume / extent * (c_hi - o_hi);
            if best.as_ref().is_none_or(|b| remaining > b.remaining_volume) {
                best = Some(Shrink { dim: d, new_lo: o_hi, new_hi: c_hi, remaining_volume: remaining });
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::from_bounds(lo, hi)
    }

    #[test]
    fn no_shrink_when_disjoint() {
        let c = r(&[0.0, 0.0], &[1.0, 1.0]);
        let o = r(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(best_shrink(&c, &o).is_none());
    }

    #[test]
    fn shrinks_away_from_corner_overlap() {
        // Obstacle covers the top-right corner; the best cut keeps 75% of the
        // volume by slicing off the thin side.
        let c = r(&[0.0, 0.0], &[10.0, 10.0]);
        let o = r(&[8.0, 5.0], &[12.0, 12.0]);
        let s = best_shrink(&c, &o).unwrap();
        assert_eq!(s.dim, 0);
        assert_eq!((s.new_lo, s.new_hi), (0.0, 8.0));
        assert_eq!(s.remaining_volume, 80.0);
        let mut shrunk = c.clone();
        s.apply(&mut shrunk);
        assert!(!shrunk.intersects(&o));
    }

    #[test]
    fn keeps_high_side_when_better() {
        let c = r(&[0.0], &[10.0]);
        let o = r(&[-5.0], &[2.0]);
        let s = best_shrink(&c, &o).unwrap();
        assert_eq!((s.new_lo, s.new_hi), (2.0, 10.0));
        assert_eq!(s.remaining_volume, 8.0);
    }

    #[test]
    fn none_when_obstacle_swallows_candidate() {
        let c = r(&[2.0, 2.0], &[3.0, 3.0]);
        let o = r(&[0.0, 0.0], &[10.0, 10.0]);
        assert!(best_shrink(&c, &o).is_none());
    }

    #[test]
    fn result_never_intersects_obstacle() {
        // A handful of deterministic configurations; the property test in
        // tests/proptests.rs covers the general case.
        let c = r(&[0.0, 0.0], &[4.0, 4.0]);
        for o in [
            r(&[1.0, 1.0], &[2.0, 2.0]),
            r(&[3.0, -1.0], &[5.0, 5.0]),
            r(&[-1.0, 3.5], &[5.0, 6.0]),
        ] {
            if let Some(s) = best_shrink(&c, &o) {
                let mut shrunk = c.clone();
                s.apply(&mut shrunk);
                assert!(!shrunk.intersects(&o), "obstacle {o} still overlaps {shrunk}");
                assert!(s.remaining_volume <= c.volume());
            }
        }
    }
}

//! Axis-aligned geometry substrate for the `sth` histogram library.
//!
//! Everything in the self-tuning histogram stack — buckets, queries, clusters —
//! is an axis-parallel hyper-rectangle over a numeric attribute space. This
//! crate provides the [`Rect`] type with the exact operations the STHoles
//! algorithm needs (intersection, own-volume computation, shrinking, bounding
//! unions) plus small helpers shared by the data generators and the clustering
//! code.
//!
//! Conventions:
//! * Rectangles are half-open boxes `[lo, hi)` per dimension. Half-open
//!   semantics make point containment unambiguous when buckets tile a region.
//! * A rectangle with `lo[d] == hi[d]` in some dimension is *empty* (zero
//!   volume, contains no point).
//! * All coordinates are finite `f64`; constructors check this.

#![warn(missing_docs)]

mod interval;
mod rect;
mod shrink;

pub use interval::Interval;
pub use rect::{Rect, RectError};
pub use shrink::{best_shrink, Shrink};

/// Relative tolerance used by the approximate comparison helpers.
pub const REL_EPS: f64 = 1e-9;

/// `true` when `a` and `b` are equal up to a relative tolerance of
/// [`REL_EPS`] (with an absolute fallback near zero).
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= REL_EPS {
        return true;
    }
    diff <= REL_EPS * a.abs().max(b.abs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_near_zero() {
        assert!(approx_eq(0.0, 0.0));
        assert!(approx_eq(0.0, 1e-12));
        assert!(!approx_eq(0.0, 1e-3));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 * (1.0 + 1e-10)));
        assert!(!approx_eq(1e12, 1e12 * 1.001));
    }
}

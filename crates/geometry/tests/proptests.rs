//! Property-based tests for the geometry substrate.

use sth_platform::check::prelude::*;
use sth_geometry::{best_shrink, Rect};

/// Strategy producing a valid rectangle in `dim` dimensions with coordinates
/// in `[-100, 100]`.
fn rect_strategy(dim: usize) -> impl Strategy<Value = Rect> {
    collection::vec((-100.0f64..100.0, 0.0f64..50.0), dim).prop_map(|bounds| {
        let lo: Vec<f64> = bounds.iter().map(|(l, _)| *l).collect();
        let hi: Vec<f64> = bounds.iter().map(|(l, e)| l + e).collect();
        Rect::from_bounds(&lo, &hi)
    })
}

check! {
    #[test]
    fn intersection_is_commutative(a in rect_strategy(3), b in rect_strategy(3)) {
        prop_assert_eq!(a.intersection(&b), b.intersection(&a));
        prop_assert!((a.overlap_volume(&b) - b.overlap_volume(&a)).abs() < 1e-9);
    }

    #[test]
    fn intersection_contained_in_both(a in rect_strategy(3), b in rect_strategy(3)) {
        if let Some(i) = a.intersection(&b) {
            prop_assert!(a.contains_rect(&i));
            prop_assert!(b.contains_rect(&i));
            prop_assert!(i.volume() <= a.volume() + 1e-9);
            prop_assert!(i.volume() <= b.volume() + 1e-9);
        }
    }

    #[test]
    fn overlap_volume_matches_intersection(a in rect_strategy(2), b in rect_strategy(2)) {
        let via_rect = a.intersection(&b).map_or(0.0, |i| i.volume());
        prop_assert!((via_rect - a.overlap_volume(&b)).abs() < 1e-6);
    }

    #[test]
    fn hull_contains_both(a in rect_strategy(4), b in rect_strategy(4)) {
        let h = a.hull(&b);
        prop_assert!(h.contains_rect(&a));
        prop_assert!(h.contains_rect(&b));
        prop_assert!(h.volume() + 1e-9 >= a.volume().max(b.volume()));
    }

    #[test]
    fn volume_is_nonnegative(a in rect_strategy(5)) {
        prop_assert!(a.volume() >= 0.0);
    }

    #[test]
    fn point_in_intersection_is_in_both(
        a in rect_strategy(3),
        b in rect_strategy(3),
        t in collection::vec(0.0f64..1.0, 3),
    ) {
        if let Some(i) = a.intersection(&b) {
            // Interpolate a point strictly inside the intersection.
            let p: Vec<f64> = (0..3)
                .map(|d| i.lo()[d] + t[d] * 0.999 * (i.hi()[d] - i.lo()[d]))
                .collect();
            if i.contains_point(&p) {
                prop_assert!(a.contains_point(&p));
                prop_assert!(b.contains_point(&p));
            }
        }
    }

    #[test]
    fn shrink_removes_overlap_and_shrinks_volume(
        c in rect_strategy(3),
        o in rect_strategy(3),
    ) {
        if let Some(s) = best_shrink(&c, &o) {
            let mut shrunk = c.clone();
            s.apply(&mut shrunk);
            prop_assert!(!shrunk.intersects(&o));
            prop_assert!(c.contains_rect(&shrunk));
            prop_assert!(shrunk.volume() <= c.volume() + 1e-9);
            prop_assert!((shrunk.volume() - s.remaining_volume).abs() < 1e-6);
        }
    }

    #[test]
    fn shrink_is_maximal_among_single_dim_cuts(
        c in rect_strategy(2),
        o in rect_strategy(2),
    ) {
        // Exhaustively enumerate all single-dimension cuts and verify none
        // beats the one chosen by best_shrink.
        if let Some(s) = best_shrink(&c, &o) {
            for d in 0..2 {
                for keep_low in [true, false] {
                    let (lo, hi) = if keep_low {
                        (c.lo()[d], o.lo()[d])
                    } else {
                        (o.hi()[d], c.hi()[d])
                    };
                    if lo >= hi || lo < c.lo()[d] || hi > c.hi()[d] {
                        continue;
                    }
                    let alt = c.with_dim(d, lo, hi);
                    if !alt.intersects(&o) {
                        prop_assert!(alt.volume() <= s.remaining_volume + 1e-6);
                    }
                }
            }
        }
    }
}

//! Benchmark regression gate: compares a fresh `BENCH_*.json` run against
//! the committed baseline and fails on large median regressions in the
//! hot-path groups.
//!
//! ```text
//! bench_gate <baseline.json> <fresh.json> [max_regression_pct]
//! ```
//!
//! Only the `refine`, `estimate`, `estimate_frozen`, `batch_kernel`,
//! `serve_concurrent`, `store_ops`, and `obs_overhead` groups are gated —
//! they are the operations the perf work targets (plus the pinned cost of
//! disabled telemetry); dataset/index ablations are informational. The default allowance is 30%: fresh runs come from
//! `STH_BENCH_FAST=1` smoke mode on whatever machine is at hand, so the
//! gate hunts order-of-magnitude regressions (an accidentally
//! quadratic merge scan), not single-digit noise.

use std::process::ExitCode;

use sth_platform::bench::{compare_reports, parse_report};

const GATED_GROUPS: &[&str] = &[
    "refine",
    "estimate",
    "estimate_frozen",
    "batch_kernel",
    "serve_concurrent",
    "serve_engine",
    "registry_route",
    "store_ops",
    "obs_overhead",
];

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    let (baseline_path, fresh_path) = match (args.get(1), args.get(2)) {
        (Some(b), Some(f)) => (b, f),
        _ => {
            eprintln!("usage: bench_gate <baseline.json> <fresh.json> [max_regression_pct]");
            return ExitCode::FAILURE;
        }
    };
    let max_regression_pct: f64 = match args.get(3) {
        None => 30.0,
        Some(raw) => match raw.parse() {
            Ok(v) => v,
            Err(_) => {
                eprintln!("bench_gate: bad max_regression_pct {raw:?}");
                return ExitCode::FAILURE;
            }
        },
    };

    let load = |path: &str| -> Result<_, String> {
        let json = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        parse_report(&json).map_err(|e| format!("{path}: {e}"))
    };
    let (baseline, fresh) = match (load(baseline_path), load(fresh_path)) {
        (Ok(b), Ok(f)) => (b, f),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("bench_gate: {e}");
            return ExitCode::FAILURE;
        }
    };

    let gate = compare_reports(&baseline, &fresh, GATED_GROUPS, max_regression_pct / 100.0);
    for line in &gate.lines {
        println!("bench_gate: {line}");
    }
    if gate.failures.is_empty() {
        println!(
            "bench_gate: OK ({} benchmarks within {max_regression_pct}% of baseline)",
            gate.lines.len()
        );
        ExitCode::SUCCESS
    } else {
        for line in &gate.failures {
            eprintln!("bench_gate: REGRESSION {line}");
        }
        eprintln!("bench_gate: FAILED ({} regressions)", gate.failures.len());
        ExitCode::FAILURE
    }
}

//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run -p sth-bench --release --bin repro -- all --scale 0.1
//! cargo run -p sth-bench --release --bin repro -- fig11 fig13 --quick
//! cargo run -p sth-bench --release --bin repro -- table2 --paper      # full size, hours
//! ```
//!
//! Tables print to stdout; with `--out DIR` each is also written as CSV.

use std::path::PathBuf;
use std::process::ExitCode;

use sth_bench::default_repro_ctx;
use sth_eval::experiments::{run_by_id, ALL_IDS};
use sth_eval::ExperimentCtx;

struct Args {
    ids: Vec<String>,
    ctx: ExperimentCtx,
    out: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: repro [IDS|all] [options]\n\
     \n\
     experiment ids:\n\
       table1 table2 table3 table4 fig9 fig10 fig11 fig12 fig13 fig14\n\
       fig15 fig16 fig17 survival sensitivity   (or: all)\n\
     \n\
     options:\n\
       --quick          tiny setting (~minutes for 'all')\n\
       --paper          full paper scale (hours; needs RAM for 13.5M-tuple Cross5d)\n\
       --scale F        tuple-count scale relative to the paper (default 0.1)\n\
       --train N        training queries (default 1000)\n\
       --sim N          simulation queries (default 1000)\n\
       --buckets A,B,C  bucket budgets (default 50,100,150,200,250)\n\
       --sample N       clustering sample cap (default 30000)\n\
       --seed N         workload seed\n\
       --out DIR        also write each table as CSV into DIR"
}

fn parse_args() -> Result<Args, String> {
    let mut ids = Vec::new();
    let mut ctx = default_repro_ctx();
    let mut out = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |i: &mut usize| -> Result<String, String> {
        *i += 1;
        argv.get(*i).cloned().ok_or_else(|| format!("missing value after {}", argv[*i - 1]))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => ctx = ExperimentCtx::quick(),
            "--paper" => ctx = ExperimentCtx::paper(),
            "--scale" => ctx.scale = value(&mut i)?.parse().map_err(|e| format!("--scale: {e}"))?,
            "--train" => ctx.train = value(&mut i)?.parse().map_err(|e| format!("--train: {e}"))?,
            "--sim" => ctx.sim = value(&mut i)?.parse().map_err(|e| format!("--sim: {e}"))?,
            "--seed" => ctx.seed = value(&mut i)?.parse().map_err(|e| format!("--seed: {e}"))?,
            "--sample" => {
                ctx.cluster_sample =
                    Some(value(&mut i)?.parse().map_err(|e| format!("--sample: {e}"))?)
            }
            "--buckets" => {
                ctx.buckets = value(&mut i)?
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--buckets: {e}")))
                    .collect::<Result<Vec<usize>, String>>()?;
                if ctx.buckets.is_empty() {
                    return Err("--buckets needs at least one value".into());
                }
            }
            "--out" => out = Some(PathBuf::from(value(&mut i)?)),
            "--help" | "-h" => return Err(String::new()),
            "all" => ids.extend(ALL_IDS.iter().map(|s| s.to_string())),
            id if ALL_IDS.contains(&id) => ids.push(id.to_string()),
            other => return Err(format!("unknown argument '{other}'")),
        }
        i += 1;
    }
    if ids.is_empty() {
        ids.extend(ALL_IDS.iter().map(|s| s.to_string()));
    }
    ids.dedup();
    Ok(Args { ids, ctx, out })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            if !e.is_empty() {
                eprintln!("error: {e}\n");
            }
            eprintln!("{}", usage());
            return if e.is_empty() { ExitCode::SUCCESS } else { ExitCode::from(2) };
        }
    };
    if let Some(dir) = &args.out {
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!("error: cannot create {}: {e}", dir.display());
            return ExitCode::FAILURE;
        }
    }
    println!(
        "# repro: scale={}, train={}, sim={}, buckets={:?}, sample={:?}, seed={}\n",
        args.ctx.scale, args.ctx.train, args.ctx.sim, args.ctx.buckets, args.ctx.cluster_sample,
        args.ctx.seed
    );
    for id in &args.ids {
        let t0 = std::time::Instant::now();
        let Some(table) = run_by_id(id, &args.ctx) else {
            eprintln!("warning: unknown experiment id '{id}' skipped");
            continue;
        };
        println!("{table}");
        println!("  [{id} finished in {:.1}s]\n", t0.elapsed().as_secs_f64());
        if let Some(dir) = &args.out {
            let path = dir.join(format!("{id}.csv"));
            if let Err(e) = std::fs::write(&path, table.to_csv()) {
                eprintln!("error: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

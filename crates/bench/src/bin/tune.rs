//! Parameter exploration helper (development tool): init-vs-uninit NAE on
//! Sky for a grid of MineClus parameters.
//!
//! ```text
//! cargo run -p sth-bench --release --bin tune -- [scale] [queries] [buckets]
//! ```

use sth_core::InitConfig;
use sth_eval::{run_simulation, DatasetSpec, ExperimentCtx, RunConfig, Variant};
use sth_mineclus::MineClusConfig;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let buckets: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let ctx = ExperimentCtx {
        scale,
        train: queries,
        sim: queries,
        buckets: vec![buckets],
        cluster_sample: Some(20_000),
        seed: 0xE0,
    };
    let prep = ctx.prepare(DatasetSpec::Sky);
    let base = RunConfig {
        train: ctx.train,
        sim: ctx.sim,
        cluster_sample: ctx.cluster_sample,
        ..RunConfig::paper(buckets, ctx.seed)
    };
    let uninit = run_simulation(&prep, &Variant::Uninitialized, &base);
    println!("uninitialized: NAE {:.3}", uninit.nae);
    for width in [40.0, 60.0, 100.0, 150.0, 220.0] {
        for (alpha, max_clusters) in [(0.01, 32), (0.02, 20), (0.05, 12)] {
            let v = Variant::Initialized {
                mineclus: MineClusConfig { alpha, width, max_clusters, ..MineClusConfig::default() },
                init: InitConfig::default(),
            };
            let out = run_simulation(&prep, &v, &base);
            let report = out.init_report.unwrap();
            println!(
                "width {width:>5.0} alpha {alpha:.2} cap {max_clusters:>2}: NAE {:.3}  ({} clusters, {} subspace)",
                out.nae,
                report.clusters.len(),
                report.subspace_cluster_count(7),
            );
        }
    }
}

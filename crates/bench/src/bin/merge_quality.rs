//! Development tool: quantify the quality impact of the capped sibling-pair
//! search against the exact all-pairs search.
//!
//! ```text
//! cargo run -p sth-bench --release --bin merge_quality -- [scale] [queries] [buckets]
//! ```

use sth_baselines::TrivialHistogram;
use sth_data::gauss::GaussSpec;
use sth_eval::{evaluate_self_tuning, evaluate_static, normalized_absolute_error};
use sth_geometry::Rect;
use sth_histogram::{SthConfig, StHoles};
use sth_index::KdCountTree;
use sth_query::WorkloadSpec;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300);
    let buckets: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let data = GaussSpec::paper().scaled(scale).generate();
    let index = KdCountTree::build(&data);
    let wl = WorkloadSpec { count: 2 * queries, ..WorkloadSpec::paper(0.01, 0xE0) }
        .generate(data.domain(), None);
    let (train, sim) = wl.split_train(queries);
    let h0 = TrivialHistogram::for_dataset(&data);
    let trivial = evaluate_static(&h0, &sim, &index);

    for cap in [Some(2usize), Some(6), Some(12), None] {
        let config = SthConfig { sibling_neighbor_cap: cap, ..SthConfig::with_budget(buckets) };
        let mut h = StHoles::with_config(data.domain().clone(), config, data.len() as f64);
        let domain: Rect = data.domain().clone();
        let _ = &domain;
        let t0 = std::time::Instant::now();
        evaluate_self_tuning(&mut h, &train, &index, true);
        let mae = evaluate_self_tuning(&mut h, &sim, &index, true);
        println!(
            "cap {:?}: NAE {:.3}  ({:.1}s)",
            cap,
            normalized_absolute_error(mae, trivial),
            t0.elapsed().as_secs_f64()
        );
    }
}

//! Phase-level timing breakdown of one simulation (development tool).
//!
//! ```text
//! cargo run -p sth-bench --release --bin profile -- [scale] [queries] [buckets]
//! ```

use std::time::Instant;

use sth_core::build_uninitialized;
use sth_data::sky::SkySpec;
use sth_index::{KdCountTree, RangeCounter, ResultSetCounter};
use sth_query::{CardinalityEstimator, WorkloadSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale: f64 = args.first().and_then(|s| s.parse().ok()).unwrap_or(0.05);
    let queries: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let buckets: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100);

    let t = Instant::now();
    let data = SkySpec::scaled(scale).generate();
    println!("generate: {:>8.3}s ({} tuples)", t.elapsed().as_secs_f64(), data.len());

    let t = Instant::now();
    let index = KdCountTree::build(&data);
    println!("index:    {:>8.3}s", t.elapsed().as_secs_f64());

    let wl = WorkloadSpec { count: queries, ..WorkloadSpec::paper(0.01, 1) }
        .generate(data.domain(), None);

    let t = Instant::now();
    let mut total = 0u64;
    for q in wl.queries() {
        total += index.count(q.rect());
    }
    println!("kd count: {:>8.3}s ({queries} queries, avg result {})", t.elapsed().as_secs_f64(), total / queries as u64);

    let t = Instant::now();
    let mut rows_total = 0usize;
    for q in wl.queries() {
        let (rows, d) = index.collect_rows(q.rect()).unwrap();
        rows_total += rows.len() / d;
    }
    println!("collect:  {:>8.3}s ({rows_total} rows)", t.elapsed().as_secs_f64());

    let mut hist = build_uninitialized(&data, buckets);
    let mut t_estimate = 0.0;
    let mut t_collect = 0.0;
    let mut t_drill = 0.0;
    let mut t_merge = 0.0;
    for q in wl.queries() {
        let t = Instant::now();
        let _ = hist.estimate(q.rect());
        t_estimate += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let result = ResultSetCounter::from_counter(&index, q.rect()).unwrap();
        t_collect += t.elapsed().as_secs_f64();
        let t = Instant::now();
        hist.drill_only(q.rect(), &result);
        t_drill += t.elapsed().as_secs_f64();
        let t = Instant::now();
        hist.compact_now();
        t_merge += t.elapsed().as_secs_f64();
    }
    println!("estimate: {:>8.3}s", t_estimate);
    println!("collect2: {:>8.3}s", t_collect);
    println!("drill:    {:>8.3}s", t_drill);
    println!("merge:    {:>8.3}s", t_merge);
    println!("buckets:  {}", hist.bucket_count());
}

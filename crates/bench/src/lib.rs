//! Shared fixtures for the Criterion benches and the `repro` binary.

#![warn(missing_docs)]

use sth_eval::{DatasetSpec, ExperimentCtx, PreparedDataset};

/// A micro experiment context for Criterion: small enough that one
/// experiment iteration takes well under a second, large enough that every
/// code path (clustering, drilling, merging, normalization) is exercised.
pub fn micro_ctx() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.01,
        train: 40,
        sim: 40,
        buckets: vec![20],
        cluster_sample: Some(2_000),
        seed: 0xBE,
    }
}

/// A small-but-meaningful context for the default `repro` run: ~10% tuples,
/// the paper's query counts, three bucket budgets.
pub fn default_repro_ctx() -> ExperimentCtx {
    ExperimentCtx {
        scale: 0.1,
        train: 1_000,
        sim: 1_000,
        buckets: vec![50, 100, 150, 200, 250],
        cluster_sample: Some(30_000),
        seed: 0xE0,
    }
}

/// Prepares the small Cross fixture used by several benches.
pub fn cross_fixture() -> PreparedDataset {
    micro_ctx().prepare(DatasetSpec::Cross2d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build() {
        let p = cross_fixture();
        assert_eq!(p.data.ndim(), 2);
        assert!(p.data.len() > 100);
    }
}

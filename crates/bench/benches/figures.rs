//! One bench per paper table/figure: each runs the corresponding experiment
//! end-to-end at a micro scale, so `cargo bench` regenerates every artifact
//! and tracks the cost of doing so.

use std::time::Duration;

use sth_platform::bench::{black_box, Bench};
use sth_bench::micro_ctx;
use sth_eval::experiments::run_by_id;

fn bench_experiments(c: &mut Bench) {
    let ctx = micro_ctx();
    let mut g = c.benchmark_group("paper_artifacts");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (bench_name, id) in [
        ("table1_datasets", "table1"),
        ("table2_param_sweep", "table2"),
        ("table3_cross_variants", "table3"),
        ("table4_sky_clustering", "table4"),
        ("fig9_cross_scatter", "fig9"),
        ("fig10_gauss_scatter", "fig10"),
        ("fig11_cross_accuracy", "fig11"),
        ("fig12_gauss_accuracy", "fig12"),
        ("fig13_sky_accuracy", "fig13"),
        ("fig14_sky_volume", "fig14"),
        ("fig15_dimensionality", "fig15"),
        ("fig16_stagnation", "fig16"),
        ("fig17_training_budget", "fig17"),
        ("survival_subspace_buckets", "survival"),
        ("sensitivity_permutations", "sensitivity"),
    ] {
        g.bench_function(bench_name, |b| {
            b.iter(|| {
                let table = run_by_id(id, &ctx).expect("known experiment id");
                black_box(table.rows.len())
            });
        });
    }
    g.finish();
}

fn main() {
    // Anchor the JSON report at the repo root (perf trajectory).
    let mut c = Bench::new("figures")
        .output_at(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_figures.json"));
    bench_experiments(&mut c);
    c.finish();
}

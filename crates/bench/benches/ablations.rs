//! Ablation benches for the design choices called out in DESIGN.md. Each
//! group runs variants of one design decision on the same fixture and
//! reports the resulting normalized error through the bench label (the
//! timing is the cost of the variant; the printed NAE comparison lives in
//! EXPERIMENTS.md).

use std::time::Duration;

use sth_platform::bench::{black_box, Bench};
use sth_bench::micro_ctx;
use sth_core::{BrMode, InitConfig, InitOrder};
use sth_eval::{run_simulation, DatasetSpec, RunConfig, Variant};
use sth_histogram::MergePolicy;
use sth_mineclus::{
    Clique, CliqueConfig, Doc, DocConfig, MineClus, MineClusConfig, Proclus, ProclusConfig,
    SubspaceClustering,
};
use sth_query::{SelfTuning, WorkloadSpec};

fn run_cfg() -> RunConfig {
    let ctx = micro_ctx();
    RunConfig {
        train: ctx.train,
        sim: ctx.sim,
        cluster_sample: ctx.cluster_sample,
        ..RunConfig::paper(30, ctx.seed)
    }
}

/// Extended BR vs plain MBR initialization (§4.1, Fig. 6).
fn ablation_br_mode(c: &mut Bench) {
    let prep = micro_ctx().prepare(DatasetSpec::Gauss);
    let mut g = c.benchmark_group("ablation_br_mode");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (label, mode) in [("extended", BrMode::Extended), ("minimal", BrMode::Minimal)] {
        let variant = Variant::Initialized {
            mineclus: MineClusConfig::default(),
            init: InitConfig { br_mode: mode, ..InitConfig::default() },
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(run_simulation(&prep, &variant, &run_cfg()).nae));
        });
    }
    g.finish();
}

/// Importance vs reversed vs random feeding order (§5.3, Fig. 13).
fn ablation_init_order(c: &mut Bench) {
    let prep = micro_ctx().prepare(DatasetSpec::Sky);
    let mut g = c.benchmark_group("ablation_init_order");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (label, order) in [
        ("importance", InitOrder::Importance),
        ("reversed", InitOrder::Reversed),
        ("random", InitOrder::Random(7)),
    ] {
        let variant = Variant::Initialized {
            mineclus: MineClusConfig::default(),
            init: InitConfig { order, ..InitConfig::default() },
        };
        g.bench_function(label, |b| {
            b.iter(|| black_box(run_simulation(&prep, &variant, &run_cfg()).nae));
        });
    }
    g.finish();
}

/// MineClus vs DOC vs CLIQUE as the initializer.
fn ablation_initializer(c: &mut Bench) {
    let prep = micro_ctx().prepare(DatasetSpec::Gauss);
    let algorithms: Vec<(&str, Box<dyn SubspaceClustering>)> = vec![
        ("mineclus", Box::new(MineClus::new(MineClusConfig::default()))),
        ("doc", Box::new(Doc::new(DocConfig::default()))),
        ("clique", Box::new(Clique::new(CliqueConfig::default()))),
        ("proclus", Box::new(Proclus::new(ProclusConfig::default()))),
    ];
    let mut g = c.benchmark_group("ablation_initializer");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (label, alg) in &algorithms {
        g.bench_function(*label, |b| {
            b.iter(|| {
                let (hist, report) = sth_core::build_initialized(
                    &prep.data,
                    30,
                    alg.as_ref(),
                    &InitConfig::default(),
                    micro_ctx().cluster_sample,
                    &*prep.index,
                );
                black_box((hist.bucket_count(), report.fed))
            });
        });
    }
    g.finish();
}

/// Full merge policy vs restricted variants.
fn ablation_merge_policy(c: &mut Bench) {
    let prep = micro_ctx().prepare(DatasetSpec::Cross2d);
    let wl = WorkloadSpec { count: 200, ..WorkloadSpec::paper(0.01, 21) }
        .generate(prep.data.domain(), None);
    let mut g = c.benchmark_group("ablation_merge_policy");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for (label, policy) in [
        ("all", MergePolicy::All),
        ("parent_child_only", MergePolicy::ParentChildOnly),
        ("sibling_first", MergePolicy::SiblingFirst),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                let mut h = sth_core::build_uninitialized(&prep.data, 30);
                h.set_merge_policy(policy);
                for q in wl.queries() {
                    h.refine(q.rect(), &*prep.index);
                }
                black_box(h.bucket_count())
            });
        });
    }
    g.finish();
}

fn main() {
    // Anchor the JSON report at the repo root (perf trajectory).
    let mut c = Bench::new("ablations")
        .output_at(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ablations.json"));
    ablation_br_mode(&mut c);
    ablation_init_order(&mut c);
    ablation_initializer(&mut c);
    ablation_merge_policy(&mut c);
    c.finish();
}

//! Microbenchmarks of the histogram's core operations: estimation (live
//! and frozen read path), hole drilling, merge search, the concurrent
//! serve loop, the poll-based serving engine (coalesced vs single-request
//! services), durability (delta append, snapshot flush, cold recovery),
//! and exact range counting (k-d tree vs scan).

use std::sync::Arc;
use std::time::Duration;

use sth_platform::bench::{black_box, Bench};
use sth_bench::cross_fixture;
use sth_core::build_uninitialized;
use sth_eval::{serve_concurrent, ServeConfig};
use sth_geometry::Rect;
use sth_index::{RangeCounter, ResultSetCounter, ScanCounter};
use sth_query::{CardinalityEstimator, Estimator, SelfTuning, WorkloadSpec};
use sth_store::vfs::{MemVfs, Vfs};
use sth_store::{DurableTrainer, Store, StoreConfig};

/// Builds a trained histogram with ~`buckets` buckets for estimation
/// benches.
fn trained_histogram(buckets: usize) -> (sth_histogram::StHoles, Vec<Rect>) {
    let prep = cross_fixture();
    let mut h = build_uninitialized(&prep.data, buckets);
    let wl = WorkloadSpec { count: 300, ..WorkloadSpec::paper(0.01, 3) }
        .generate(prep.data.domain(), None);
    for q in wl.queries() {
        h.refine(q.rect(), &*prep.index);
    }
    let probes: Vec<Rect> =
        wl.queries().iter().take(64).map(|q| q.rect().clone()).collect();
    (h, probes)
}

fn bench_estimate(c: &mut Bench) {
    let mut g = c.benchmark_group("estimate");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for buckets in [50usize, 250] {
        let (h, probes) = trained_histogram(buckets);
        g.bench_function(format!("buckets_{buckets}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &probes[i % probes.len()];
                i += 1;
                black_box(h.estimate(q))
            });
        });
    }
    g.finish();
}

fn bench_estimate_frozen(c: &mut Bench) {
    // The packed read path against the same probes as `estimate`: function
    // names match across the two groups so the reports compare directly.
    let mut g = c.benchmark_group("estimate_frozen");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for buckets in [50usize, 250] {
        let (h, probes) = trained_histogram(buckets);
        let frozen = h.freeze();
        g.bench_function(format!("buckets_{buckets}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &probes[i % probes.len()];
                i += 1;
                black_box(frozen.estimate(q))
            });
        });
        // The batch entry point amortizes the traversal scratch across
        // queries — the shape the serve loop actually runs.
        g.bench_function(format!("batch64_buckets_{buckets}"), |b| {
            let mut out = Vec::with_capacity(probes.len());
            b.iter(|| {
                out.clear();
                frozen.estimate_batch(&probes, &mut out);
                black_box(out.len())
            });
        });
    }
    g.finish();
}

fn bench_batch_kernel(c: &mut Bench) {
    // The lane-oriented batch kernel vs the scalar per-query loop on the
    // same frozen snapshot and probe set. Names carry the batch size so
    // per-query numbers divide out; `estimate_frozen/batch64_*` (above)
    // stays as the dispatching entry point for trajectory comparison.
    let mut g = c.benchmark_group("batch_kernel");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for buckets in [50usize, 250] {
        let (h, probes) = trained_histogram(buckets);
        let frozen = h.freeze();
        for batch in [16usize, 64] {
            let slice = &probes[..batch.min(probes.len())];
            g.bench_function(format!("kernel{batch}_buckets_{buckets}"), |b| {
                let mut out = Vec::with_capacity(batch);
                b.iter(|| {
                    frozen.estimate_batch_kernel(slice, &mut out);
                    black_box(out.len())
                });
            });
            g.bench_function(format!("scalar{batch}_buckets_{buckets}"), |b| {
                let mut out = Vec::with_capacity(batch);
                b.iter(|| {
                    out.clear();
                    for q in slice {
                        out.push(frozen.estimate(q));
                    }
                    black_box(out.len())
                });
            });
        }
    }
    g.finish();
}

fn bench_serve_concurrent(c: &mut Bench) {
    // One full train-while-serving run: trainer refines + republishes,
    // scope_map readers answer batches from pinned snapshots.
    let prep = cross_fixture();
    let wl = WorkloadSpec { count: 160, ..WorkloadSpec::paper(0.01, 11) }
        .generate(prep.data.domain(), None);
    let (train, serve) = wl.split_train(96);
    let mut g = c.benchmark_group("serve_concurrent");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for readers in [2usize, 4] {
        g.bench_function(format!("readers_{readers}"), |b| {
            let cfg = ServeConfig { readers, batch: 16, republish_every: 24 };
            b.iter(|| {
                let mut h = build_uninitialized(&prep.data, 50);
                let report = serve_concurrent(&mut h, &train, &serve, &*prep.index, &cfg);
                black_box(report.answered())
            });
        });
    }
    g.finish();
}

fn bench_serve_engine(c: &mut Bench) {
    // The poll-based serving engine end to end: spin up the reactor, push
    // a fixed backlog of 4-query requests through the open loop, drain.
    // Two backlog sizes give two operating points (a light and a deep
    // queue), each with coalescing on (requests grouped up to 64 queries
    // for the lane kernel) and off (one request per service — the
    // thread-per-reader regime at equal thread count). Engine-thread
    // startup is included; it is the same across the on/off pairs, so
    // the delta isolates what coalescing buys.
    use sth_platform::snap::SnapshotCell;
    use sth_serve::{run_open, CellBackend, EngineConfig};

    let (h, probes) = trained_histogram(50);
    let cell = SnapshotCell::new(h.freeze());
    let mut g = c.benchmark_group("serve_engine");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for requests in [64usize, 512] {
        for coalesce in [64usize, 1] {
            let cfg = EngineConfig { threads: 2, coalesce, deadline: None };
            let label = if coalesce > 1 { "coalesced" } else { "single" };
            g.bench_function(format!("open_{requests}req_{label}"), |b| {
                b.iter(|| {
                    let backend = CellBackend::new(&cell);
                    let (report, ()) = run_open(&backend, &cfg, false, |inj| {
                        for i in 0..requests {
                            let at = (i * 4) % (probes.len() - 4);
                            inj.inject(0, probes[at..at + 4].to_vec());
                        }
                    });
                    black_box(report.answered_total())
                });
            });
        }
    }
    g.finish();
}

fn bench_registry_route(c: &mut Bench) {
    // Multi-tenant routing overhead and sharded-publication cost. The
    // routed mixed batch is compared against answering the same number of
    // probes from one pinned tenant view (what routing costs on top of
    // estimation); the publish rows contrast a clean differential publish
    // — every shard recognized bit-identical and skipped — with a forced
    // full refreeze of every shard cell.
    use sth_eval::{Registry, TenantKey};
    let tenants = 4usize;
    let mut reg = Registry::new();
    let mut hists = Vec::with_capacity(tenants);
    let mut probes = Vec::new();
    for t in 0..tenants {
        let (h, p) = trained_histogram(50);
        reg.register(TenantKey::new(format!("t{t}"), vec![0, 1]), &h);
        hists.push(h);
        probes = p;
    }
    let mixed: Vec<(usize, Rect)> =
        (0..64).map(|j| (j % tenants, probes[j % probes.len()].clone())).collect();
    let single: Vec<Rect> = mixed.iter().map(|(_, q)| q.clone()).collect();

    let mut g = c.benchmark_group("registry_route");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function(format!("routed64_tenants_{tenants}"), |b| {
        let mut out = Vec::with_capacity(mixed.len());
        b.iter(|| {
            reg.estimate_batch_routed(&mixed, &mut out);
            black_box(out.len())
        });
    });
    g.bench_function("direct64_single_tenant", |b| {
        let view = reg.load(0);
        let mut out = Vec::with_capacity(single.len());
        b.iter(|| {
            view.estimate_batch(&single, &mut out);
            black_box(out.len())
        });
    });
    g.bench_function("publish_differential_clean", |b| {
        b.iter(|| black_box(reg.publish_with(0, &hists[0], true).shard_skips));
    });
    g.bench_function("publish_full_refreeze", |b| {
        b.iter(|| black_box(reg.publish_with(0, &hists[0], false).shard_publishes));
    });
    g.finish();
}

fn bench_store_ops(c: &mut Bench) {
    // Durability costs on an in-memory VFS (no disk noise): the per-query
    // write-ahead append, a full snapshot generation, and the recovery
    // value proposition — cold `Store::open` (newest snapshot + tail
    // replay) vs retraining the same histogram from scratch.
    let prep = cross_fixture();
    let wl = WorkloadSpec { count: 200, ..WorkloadSpec::paper(0.01, 13) }
        .generate(prep.data.domain(), None);
    let mut g = c.benchmark_group("store_ops");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);

    // The log append alone: frame encode + CRC + VFS append. Flush
    // thresholds are parked at infinity so no snapshot sneaks in.
    g.bench_function("delta_append", |b| {
        let hist = build_uninitialized(&prep.data, 50);
        let cfg = StoreConfig {
            flush_every_deltas: usize::MAX,
            flush_every_bytes: u64::MAX,
            retain_generations: 2,
        };
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let mut store = Store::create("/bench", vfs, cfg, &hist).expect("create");
        let q = wl.queries()[0].rect().clone();
        let mut result = ResultSetCounter::empty(prep.data.ndim());
        result.refill_from_counter(&*prep.index, &q);
        let truth = result.total() as f64;
        b.iter(|| black_box(store.append_delta(&q, &result, truth).expect("append")));
    });

    // One snapshot generation end to end: codec encode, atomic publish,
    // manifest rewrite, retention GC of the generation that fell off.
    g.bench_function("snapshot_flush", |b| {
        let (h, _) = trained_histogram(50);
        let cfg = StoreConfig { retain_generations: 2, ..StoreConfig::default() };
        let vfs: Arc<dyn Vfs> = Arc::new(MemVfs::new());
        let mut store = Store::create("/bench", vfs, cfg, &h).expect("create");
        b.iter(|| black_box(store.flush_snapshot(&h).expect("flush")));
    });

    // 128 absorbed queries with the default flush-every-64 policy: a cold
    // open loads the newest snapshot and replays at most the active tail,
    // while losing the store means paying all 128 refines again.
    {
        let cfg = StoreConfig::default();
        let (train, _) = wl.split_train(128);
        let vfs = Arc::new(MemVfs::new());
        let hist = build_uninitialized(&prep.data, 50);
        let mut t =
            DurableTrainer::create("/bench", vfs.clone() as Arc<dyn Vfs>, cfg.clone(), hist)
                .expect("create");
        for q in train.queries() {
            t.absorb(q.rect(), &*prep.index).expect("absorb");
        }
        let files = vfs.files();
        g.bench_function("cold_open_128", |b| {
            b.iter(|| {
                let mem: Arc<dyn Vfs> = Arc::new(MemVfs::from_files(files.clone()));
                let (t, report) =
                    DurableTrainer::open("/bench", mem, cfg.clone()).expect("open");
                black_box((t.seq(), report.replayed))
            });
        });
        g.bench_function("full_retrain_128", |b| {
            b.iter(|| {
                let mut h = build_uninitialized(&prep.data, 50);
                for q in train.queries() {
                    h.refine(q.rect(), &*prep.index);
                }
                black_box(h.bucket_count())
            });
        });
    }
    g.finish();
}

fn bench_refine(c: &mut Bench) {
    let prep = cross_fixture();
    let wl = WorkloadSpec { count: 2_000, ..WorkloadSpec::paper(0.01, 5) }
        .generate(prep.data.domain(), None);
    let mut g = c.benchmark_group("refine");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for buckets in [50usize, 250] {
        g.bench_function(format!("budget_{buckets}"), |b| {
            b.iter(|| {
                let mut h = build_uninitialized(&prep.data, buckets);
                for q in wl.queries().iter().take(200) {
                    h.refine(q.rect(), &*prep.index);
                }
                black_box(h.bucket_count())
            });
        });
    }
    g.finish();
}

fn bench_refine_steady(c: &mut Bench) {
    // Steady state: the histogram is already at budget, so each refine is
    // one drill pass plus enough merges to get back under budget — the
    // per-query cost once the simulation loop has warmed up (bench_refine
    // measures the cold ramp-up instead).
    let prep = cross_fixture();
    let wl = WorkloadSpec { count: 2_000, ..WorkloadSpec::paper(0.01, 7) }
        .generate(prep.data.domain(), None);
    let mut g = c.benchmark_group("refine_steady");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.sample_size(10);
    for buckets in [50usize, 250] {
        let (mut h, _) = trained_histogram(buckets);
        g.bench_function(format!("budget_{buckets}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = wl.queries()[i % wl.len()].rect();
                i += 1;
                h.refine(q, &*prep.index);
                black_box(h.bucket_count())
            });
        });
    }
    g.finish();
}

fn bench_traversal(c: &mut Bench) {
    // The hull-gated tree walk behind both estimation and drilling.
    let mut g = c.benchmark_group("traversal");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    for buckets in [50usize, 250] {
        let (h, probes) = trained_histogram(buckets);
        g.bench_function(format!("buckets_intersecting_{buckets}"), |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &probes[i % probes.len()];
                i += 1;
                black_box(h.buckets_intersecting(q).len())
            });
        });
    }
    g.finish();
}

fn bench_best_merge(c: &mut Bench) {
    let (mut h, _) = trained_histogram(250);
    c.bench_function("best_merge_scan_250", |b| b.iter(|| black_box(h.best_merge())));
}

fn bench_counting(c: &mut Bench) {
    // `ablation_index`: the k-d tree vs a full scan for exact range counts.
    let prep = cross_fixture();
    let scan = ScanCounter::new(&prep.data);
    let queries: Vec<Rect> = WorkloadSpec { count: 64, ..WorkloadSpec::paper(0.01, 9) }
        .generate(prep.data.domain(), None)
        .queries()
        .iter()
        .map(|q| q.rect().clone())
        .collect();
    let mut g = c.benchmark_group("ablation_index");
    g.warm_up_time(Duration::from_millis(500));
    g.measurement_time(Duration::from_secs(3));
    g.bench_function("kd_tree", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(prep.index.count(q))
        });
    });
    g.bench_function("scan", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &queries[i % queries.len()];
            i += 1;
            black_box(scan.count(q))
        });
    });
    g.finish();
}

fn bench_obs_overhead(c: &mut Bench) {
    // Telemetry cost pins. The `_disabled` rows are the serving default
    // (no STH_METRICS / STH_TRACE / STH_FLIGHT): every recording entry
    // point must stay a relaxed load + branch, which the bench gate
    // enforces across PRs. The `_enabled` row documents the opt-in cost
    // of a histogram bump for reference.
    use sth_platform::obs;
    let mut g = c.benchmark_group("obs_overhead");
    g.warm_up_time(Duration::from_millis(300));
    g.measurement_time(Duration::from_secs(1));
    obs::force_metrics(false);
    obs::flight::force(false);
    g.bench_function("counter_add_disabled", |b| {
        b.iter(|| obs::add(obs::Counter::Queries, black_box(1)))
    });
    g.bench_function("record_hist_disabled", |b| {
        b.iter(|| obs::record_hist(obs::HistKind::BatchEstimateNs, black_box(42)))
    });
    g.bench_function("hist_timer_disabled", |b| {
        b.iter(|| black_box(obs::time_hist(obs::HistKind::RefineNs)))
    });
    g.bench_function("event_disabled", |b| {
        b.iter(|| obs::event("bench", &[("i", obs::FieldValue::Int(black_box(1)))]))
    });
    obs::force_metrics(true);
    g.bench_function("record_hist_enabled", |b| {
        b.iter(|| obs::record_hist(obs::HistKind::BatchEstimateNs, black_box(42)))
    });
    obs::force_metrics(false);
    g.finish();
}

fn main() {
    // Anchor the JSON report at the repo root (perf trajectory).
    let mut c = Bench::new("core_ops")
        .output_at(concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_core_ops.json"));
    bench_estimate(&mut c);
    bench_estimate_frozen(&mut c);
    bench_batch_kernel(&mut c);
    bench_serve_concurrent(&mut c);
    bench_serve_engine(&mut c);
    bench_registry_route(&mut c);
    bench_store_ops(&mut c);
    bench_refine(&mut c);
    bench_refine_steady(&mut c);
    bench_traversal(&mut c);
    bench_best_merge(&mut c);
    bench_counting(&mut c);
    bench_obs_overhead(&mut c);
    c.finish();
}

#!/usr/bin/env bash
# Benchmark regression gate: runs the core_ops suite in fast smoke mode
# against a scratch output file (STH_BENCH_OUT keeps the committed
# baseline untouched), then diffs the medians of the gated groups
# (refine, estimate) against the committed BENCH_core_ops.json.
#
# Fast mode is noisy, so the gate only fails on >30% regressions —
# it exists to catch algorithmic regressions, not jitter. Override the
# allowance by passing a percentage: `scripts/bench_gate.sh 50`.
set -euo pipefail
cd "$(dirname "$0")/.."

# The gate measures the *disabled* cost of the observability layer: with
# these unset, every obs hook must be a relaxed load + branch (DESIGN.md
# "Observability"). Tracing to a file would make the numbers meaningless.
unset STH_TRACE STH_METRICS STH_AUDIT STH_FLIGHT

max_regression_pct="${1:-30}"
baseline="BENCH_core_ops.json"
fresh="$(mktemp -t bench_gate_fresh.XXXXXX.json)"
trap 'rm -f "$fresh"' EXIT

if [[ ! -f "$baseline" ]]; then
    echo "bench_gate.sh: missing committed baseline $baseline" >&2
    exit 1
fi

STH_BENCH_FAST=1 STH_BENCH_OUT="$fresh" \
    cargo bench -p sth-bench --bench core_ops --offline

cargo run -p sth-bench --bin bench_gate --release --offline -- \
    "$baseline" "$fresh" "$max_regression_pct"

#!/usr/bin/env bash
# Tier-1 verification, run exactly as CI would: fully offline.
#
# The workspace has a hermetic-build policy (see DESIGN.md): intra-workspace
# path dependencies only, so --offline must never be the reason a build
# fails. Any network access during this script is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo build --examples --offline

# Opt-in perf stage (not tier-1): smoke-run the core_ops benches and fail
# on large median regressions against the committed baseline.
if [[ "${STH_VERIFY_BENCH:-0}" == "1" ]]; then
    scripts/bench_gate.sh
fi

echo "verify: OK"

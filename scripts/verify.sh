#!/usr/bin/env bash
# Tier-1 verification, run exactly as CI would: fully offline.
#
# The workspace has a hermetic-build policy (see DESIGN.md): intra-workspace
# path dependencies only, so --offline must never be the reason a build
# fails. Any network access during this script is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release --offline
cargo test -q --offline
cargo build --examples --offline

# Observability acceptance: run the demo with audit mode on and tracing to
# a scratch file. The example itself asserts the one-probe-per-query
# invariant, re-checks histogram invariants after every refinement
# (STH_AUDIT=1), and validates that the emitted event log parses and
# covers clustering, drilling, merging, IPF and index probes.
trace_log="$(mktemp -t sth_verify_trace.XXXXXX.jsonl)"
trap 'rm -f "$trace_log"' EXIT
STH_TRACE="$trace_log" STH_AUDIT=1 \
    cargo run -q --release --offline --example observability > /dev/null
echo "verify: observability example OK ($(wc -l < "$trace_log") trace events)"

# Serving acceptance: concurrent readers answer estimate batches from
# epoch-published frozen snapshots while the trainer refines. The example
# asserts ≥ 2 epochs served, per-reader final-epoch drains, an invariant
# check on every loaded snapshot (STH_AUDIT=1), and frozen/live
# bit-identity.
STH_AUDIT=1 cargo run -q --release --offline --example serving > /dev/null
echo "verify: serving example OK"

# Registry acceptance: 8 tenants (tables/subspaces) registered, trained
# and served concurrently out of one registry with sharded publication.
# The example asserts mixed-tenant routing is bit-identical to per-tenant
# estimation, that a localized refinement republishes only the shard it
# dirtied (per-shard epoch counters), and that per-tenant timelines and
# the composite epoch account for every publication round exactly.
STH_AUDIT=1 cargo run -q --release --offline --example registry > /dev/null
echo "verify: registry example OK"

# Durability acceptance: train through the write-ahead store, kill the run
# mid-stream with an injected filesystem fault, reopen the torn directory
# and finish bit-identically to a never-crashed reference run. The example
# also time-travels every retained snapshot generation and round-trips the
# protocol through the real filesystem in a scratch directory.
STH_AUDIT=1 cargo run -q --release --offline --example durability > /dev/null
echo "verify: durability example OK"

# Telemetry acceptance: serve a concurrent workload with metrics and the
# flight recorder forced on, print the per-epoch timeline (publishes,
# batches, latency quantiles, kernel counters, store flush bytes), and
# fault-inject a durable run so the store poisoning dumps the flight
# recorder. The example asserts non-degenerate p50/p99/p999, one latency
# sample per batch, and that the dump carries the pre-crash absorb trail.
STH_METRICS=1 STH_FLIGHT=1 \
    cargo run -q --release --offline --example telemetry > /dev/null
echo "verify: telemetry example OK"

# Reactor acceptance: the closed-loop load generator sweeps offered
# throughput against the poll-based serving engine (2 threads, 4-query
# requests) and prints p50/p99 latency, shed rate and goodput per point.
# The example asserts exact offered == answered + shed accounting at
# every operating point, that saturation makes the engine coalesce past
# the kernel threshold, and that coalescing sustains at least the
# goodput of one-request-per-service at equal thread count.
cargo run -q --release --offline --example reactor
echo "verify: reactor example OK"

# Opt-in perf stage (not tier-1): smoke-run the core_ops benches and fail
# on large median regressions against the committed baseline.
if [[ "${STH_VERIFY_BENCH:-0}" == "1" ]]; then
    scripts/bench_gate.sh
fi

echo "verify: OK"
